// Command hmtrace inspects, exports and replays hetmem capture files
// (the JSONL traces written by the kernel drivers' -trace flag).
//
// Usage:
//
//	hmtrace summary [-session id] trace.jsonl|capture-dir/
//	hmtrace export [-o out.json] trace.jsonl
//	hmtrace schedule trace.jsonl
//	hmtrace diff a.jsonl b.jsonl
//	hmtrace whatif [-strategy name] [-evict-policy name] [-evict-lazy=bool]
//	        [-io-threads n] [-prefetch-depth n] [-hbm-reserve bytes]
//	        [-abandon-above seconds] trace.jsonl
//	hmtrace tune [-o tune.json] [-no-abandon] trace.jsonl
//
// summary prints the terminal digest: per-lane occupancy, the share of
// staged time hidden under compute, and the exposed staging time. Given
// a directory (hetmemd's -capture-dir), it summarizes every *.jsonl
// capture in file-name order and closes with a per-tenant aggregate
// table; -session restricts the report to one hetmemd session id. When
// the capture (or directory) sits next to a tune.json artifact whose
// digest names one of the summarized captures, summary also prints the
// tune provenance — which knobs the offline autotuner recommended, and
// from which capture the verdict was computed.
// export converts the capture to Chrome trace_event JSON (load it in a
// trace viewer: one track per PE plus the IO-thread lanes). schedule
// prints the canonical per-task schedule used by the replay-fidelity
// invariant. whatif reconstructs the captured workload and re-drives it
// through the real scheduler under overridden knobs, then prints a
// recorded-vs-replayed comparison table; -abandon-above cuts the replay
// off as soon as its makespan provably reaches the bound (the answer
// becomes "at least that slow" — cheap for ruling configurations out).
// tune runs the offline autotuner over the capture: a grid-then-climb
// search of the retunable knob space, every candidate judged by real-
// scheduler replay, and writes the versioned RecommendedConfig artifact
// (default: tune.json next to the capture, where summary finds it).
// diff aligns two captures task-by-task and names the first divergent
// event — the tool to reach for when a determinism check reports two
// runs that should have been byte-identical but were not.
//
// Exit status: 0 on success; 2 when the capture is corrupt or
// truncated — the readable prefix is still processed and reported
// before exiting — or when whatif refuses a capture whose recorded
// memory tier chain does not match the machine its spec rebuilds.
// diff exits 1 when the captures differ.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/trace"
	"github.com/hetmem/hetmem/internal/tune"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: hmtrace <command> [flags] trace.jsonl

commands:
  summary    print occupancy, overlap and movement counters
             (a directory summarizes all captures + per-tenant totals;
             -session id filters hetmemd session traces)
  export     convert to Chrome trace_event JSON (-o file, default stdout)
  schedule   print the canonical per-task schedule
  diff       align two captures task-by-task and name the first divergence
  whatif     replay the workload under different knobs and compare
  tune       search the knob space by replay; write a RecommendedConfig
`

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprint(stderr, usage)
		return 1
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return cmdSummary(rest, stdout, stderr)
	case "export":
		return cmdExport(rest, stdout, stderr)
	case "schedule":
		return cmdSchedule(rest, stdout, stderr)
	case "diff":
		return cmdDiff(rest, stdout, stderr)
	case "whatif":
		return cmdWhatIf(rest, stdout, stderr)
	case "tune":
		return cmdTune(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "hmtrace: unknown command %q\n%s", cmd, usage)
		return 1
	}
}

// load decodes a capture, reporting (but tolerating) corruption: the
// readable prefix is returned with damaged=true so commands can finish
// their report and then exit 2.
func load(path string, stderr io.Writer) (c *trace.Capture, damaged bool, ok bool) {
	c, err := trace.DecodeFile(path)
	if err == nil {
		return c, false, true
	}
	if c == nil || len(c.Events) == 0 {
		fmt.Fprintf(stderr, "hmtrace: %s: %v\n", path, err)
		return nil, true, false
	}
	fmt.Fprintf(stderr, "hmtrace: %s: %v (continuing with the %d events read)\n", path, err, len(c.Events))
	return c, true, true
}

// exitCode maps the damage flag to the final exit status.
func exitCode(damaged bool) int {
	if damaged {
		return 2
	}
	return 0
}

func onePath(fs *flag.FlagSet, stderr io.Writer) (string, bool) {
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "hmtrace %s: want exactly one trace file, got %d args\n", fs.Name(), fs.NArg())
		return "", false
	}
	return fs.Arg(0), true
}

func cmdSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	session := fs.String("session", "", "summarize only the capture with this session id (hetmemd traces)")
	if fs.Parse(args) != nil {
		return 1
	}
	path, ok := onePath(fs, stderr)
	if !ok {
		return 1
	}
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return summarizeDir(path, *session, stdout, stderr)
	}
	c, damaged, ok := load(path, stderr)
	if !ok {
		return 2
	}
	if *session != "" && sessionOf(c) != *session {
		fmt.Fprintf(stderr, "hmtrace summary: %s holds session %q, not %q\n", path, sessionOf(c), *session)
		return 1
	}
	printSessionHeader(stdout, c)
	fmt.Fprint(stdout, trace.Summarize(c).String())
	if rc := tuneArtifactFor(filepath.Dir(path)); rc != nil && rc.CaptureDigest == tune.Digest(c) {
		printTuneProvenance(stdout, rc, filepath.Base(path))
	}
	return exitCode(damaged)
}

// tuneArtifactFor loads the tune artifact conventionally stored next to
// the captures (tune.ArtifactName inside dir), or nil when there is
// none (or it does not parse — provenance is garnish, never an error).
func tuneArtifactFor(dir string) *tune.RecommendedConfig {
	rc, err := tune.Load(filepath.Join(dir, tune.ArtifactName))
	if err != nil {
		return nil
	}
	return rc
}

// printTuneProvenance renders an artifact's verdict under a summary.
// match names the summarized capture whose digest the artifact carries
// ("" = the verdict came from a capture not in this report).
func printTuneProvenance(w io.Writer, rc *tune.RecommendedConfig, match string) {
	fmt.Fprintf(w, "\ntune provenance (%s):\n", tune.ArtifactName)
	fmt.Fprintf(w, "  recommends %s (predicted %.6f s", knobsBrief(rc.Knobs), rc.PredictedMakespanS)
	if rc.RecordedMakespanS > 0 {
		fmt.Fprintf(w, ", recorded %.6f s", rc.RecordedMakespanS)
	}
	fmt.Fprint(w, ")\n")
	fmt.Fprintf(w, "  search: %d candidates, %d replays (%d abandoned early, %d memo hits)\n",
		len(rc.Trace), rc.Replays, rc.Abandoned, rc.MemoHits)
	if match != "" {
		fmt.Fprintf(w, "  computed from %s (digest %.12s)\n", match, rc.CaptureDigest)
	} else {
		fmt.Fprintf(w, "  computed from digest %.12s (not among these captures)\n", rc.CaptureDigest)
	}
}

// sessionOf returns the session id stamped by hetmemd's recorder, or ""
// for plain kernel-driver captures.
func sessionOf(c *trace.Capture) string {
	if m := c.Meta(); m != nil {
		return m.Session
	}
	return ""
}

// printSessionHeader names the session and tenant when the capture has
// them (a hetmemd trace); plain captures print nothing extra.
func printSessionHeader(w io.Writer, c *trace.Capture) {
	if m := c.Meta(); m != nil && m.Session != "" {
		fmt.Fprintf(w, "session %s (tenant %s)\n", m.Session, m.Tenant)
	}
}

// tenantAgg accumulates per-tenant totals across a capture directory.
type tenantAgg struct {
	sessions  int
	tasks     int64
	fetches   int64
	evictions int64
	exposed   float64
	makespan  float64
}

// summarizeDir summarizes every *.jsonl capture in dir (sorted by file
// name, so hetmemd's <session-id>.jsonl layout reads in session order),
// optionally filtered to one session id, and closes with a per-tenant
// aggregate table. Damaged captures are reported and still aggregated
// from their readable prefix.
func summarizeDir(dir, session string, stdout, stderr io.Writer) int {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		fmt.Fprintf(stderr, "hmtrace summary: %v\n", err)
		return 2
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "hmtrace summary: no *.jsonl captures in %s\n", dir)
		return 1
	}
	agg := map[string]*tenantAgg{}
	var tenants []string
	digests := map[string]string{} // capture digest -> file base name
	matched, anyDamaged := 0, false
	for _, p := range paths {
		c, damaged, ok := load(p, stderr)
		if !ok {
			anyDamaged = true
			continue
		}
		if session != "" && sessionOf(c) != session {
			continue
		}
		digests[tune.Digest(c)] = filepath.Base(p)
		matched++
		anyDamaged = anyDamaged || damaged
		if matched > 1 {
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "== %s\n", filepath.Base(p))
		printSessionHeader(stdout, c)
		s := trace.Summarize(c)
		fmt.Fprint(stdout, s.String())

		tenant := "-"
		if m := c.Meta(); m != nil && m.Tenant != "" {
			tenant = m.Tenant
		}
		a := agg[tenant]
		if a == nil {
			a = &tenantAgg{}
			agg[tenant] = a
			tenants = append(tenants, tenant)
		}
		a.sessions++
		a.tasks += s.Tasks
		a.fetches += s.Fetches
		a.evictions += s.Evictions
		a.exposed += float64(s.ExposedStage)
		a.makespan += float64(s.Makespan)
	}
	if matched == 0 {
		if session != "" {
			fmt.Fprintf(stderr, "hmtrace summary: no capture in %s holds session %q\n", dir, session)
		}
		return 1
	}
	sort.Strings(tenants)
	fmt.Fprintf(stdout, "\nper-tenant totals (%d capture(s)):\n", matched)
	fmt.Fprintf(stdout, "%-12s %8s %10s %9s %10s %14s %14s\n",
		"tenant", "sessions", "tasks", "fetches", "evictions", "exposed (s)", "makespan (s)")
	for _, tn := range tenants {
		a := agg[tn]
		fmt.Fprintf(stdout, "%-12s %8d %10d %9d %10d %14.6f %14.6f\n",
			tn, a.sessions, a.tasks, a.fetches, a.evictions, a.exposed, a.makespan)
	}
	if rc := tuneArtifactFor(dir); rc != nil {
		printTuneProvenance(stdout, rc, digests[rc.CaptureDigest])
	}
	return exitCode(anyDamaged)
}

func cmdExport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write Chrome trace JSON to this file (default stdout)")
	if fs.Parse(args) != nil {
		return 1
	}
	path, ok := onePath(fs, stderr)
	if !ok {
		return 1
	}
	c, damaged, ok := load(path, stderr)
	if !ok {
		return 2
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "hmtrace export: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := trace.ExportChrome(c, w); err != nil {
		fmt.Fprintf(stderr, "hmtrace export: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stderr, "[chrome trace written to %s]\n", *out)
	}
	return exitCode(damaged)
}

func cmdSchedule(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil {
		return 1
	}
	path, ok := onePath(fs, stderr)
	if !ok {
		return 1
	}
	c, damaged, ok := load(path, stderr)
	if !ok {
		return 2
	}
	fmt.Fprint(stdout, c.ScheduleString())
	return exitCode(damaged)
}

func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil {
		return 1
	}
	if fs.NArg() != 2 {
		fmt.Fprintf(stderr, "hmtrace diff: want exactly two trace files, got %d args\n", fs.NArg())
		return 1
	}
	a, damagedA, ok := load(fs.Arg(0), stderr)
	if !ok {
		return 2
	}
	b, damagedB, ok := load(fs.Arg(1), stderr)
	if !ok {
		return 2
	}
	r := trace.Diff(a, b)
	fmt.Fprint(stdout, r.String())
	if damagedA || damagedB {
		return 2
	}
	if !r.Identical {
		return 1
	}
	return 0
}

// strategies maps the -strategy short names to core mode strings.
var strategies = map[string]core.Mode{
	"ddr4only": core.DDROnly,
	"naive":    core.Baseline,
	"single":   core.SingleIO,
	"noio":     core.NoIO,
	"multi":    core.MultiIO,
}

func cmdWhatIf(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strategy := fs.String("strategy", "", "override the movement strategy: ddr4only, naive, single, noio or multi")
	policy := fs.String("evict-policy", "", "override the eviction victim policy: decl, lru or lookahead")
	lazy := fs.Bool("evict-lazy", false, "override lazy eviction")
	ioThreads := fs.Int("io-threads", 0, "override the IO thread count (single strategy)")
	depth := fs.Int("prefetch-depth", 0, "override the prefetch depth (multi strategy; 0 = unlimited)")
	reserve := fs.Int64("hbm-reserve", 0, "override the HBM reserve in bytes")
	abandonAbove := fs.Float64("abandon-above", 0,
		"cut the replay off once its makespan provably reaches this many seconds (0 = replay fully)")
	if fs.Parse(args) != nil {
		return 1
	}
	path, ok := onePath(fs, stderr)
	if !ok {
		return 1
	}
	c, damaged, ok := load(path, stderr)
	if !ok {
		return 2
	}
	// The evaluator is the same replay path the tune search runs on; the
	// only whatif-specific part left is flag parsing and the table.
	ev, err := tune.NewEvaluator(c)
	if err != nil {
		fmt.Fprintf(stderr, "hmtrace whatif: %v\n", err)
		return 2
	}

	knobs := ev.Base()
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["strategy"] {
		mode, ok := strategies[*strategy]
		if !ok {
			fmt.Fprintf(stderr, "hmtrace whatif: unknown strategy %q (want ddr4only, naive, single, noio or multi)\n", *strategy)
			return 1
		}
		knobs.Mode = mode.String()
	}
	if set["evict-policy"] {
		if _, err := core.ParseEvictPolicy(*policy); err != nil {
			fmt.Fprintf(stderr, "hmtrace whatif: %v\n", err)
			return 1
		}
		knobs.EvictPolicy = *policy
	}
	if set["evict-lazy"] {
		knobs.EvictLazily = *lazy
	}
	if set["io-threads"] {
		knobs.IOThreads = *ioThreads
	}
	if set["prefetch-depth"] {
		knobs.PrefetchDepth = *depth
	}
	if set["hbm-reserve"] {
		knobs.HBMReserve = *reserve
	}

	res, err := ev.Replay(knobs, *abandonAbove)
	if err != nil {
		fmt.Fprintf(stderr, "hmtrace whatif: replay: %v\n", err)
		if errors.Is(err, trace.ErrTierMismatch) {
			// The capture is internally inconsistent with its own
			// spec — same class as a damaged capture.
			return 2
		}
		return 1
	}
	if res.Abandoned {
		fmt.Fprintf(stdout, "replay abandoned at %.6fs: under %s the makespan is provably >= %.6f s\n",
			res.Makespan, knobsBrief(knobs), res.Makespan)
		if st := c.Stats(); st != nil {
			fmt.Fprintf(stdout, "(recorded makespan was %.6f s)\n", st.Makespan)
		}
		return exitCode(damaged)
	}
	printComparison(stdout,
		trace.OutcomeOf("recorded", c),
		trace.OutcomeOf("replayed", res.Capture))
	return exitCode(damaged)
}

func cmdTune(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "artifact destination ('-' for stdout; default tune.json next to the capture)")
	noAbandon := fs.Bool("no-abandon", false, "replay every candidate to completion (slower, same verdict)")
	if fs.Parse(args) != nil {
		return 1
	}
	path, ok := onePath(fs, stderr)
	if !ok {
		return 1
	}
	c, damaged, ok := load(path, stderr)
	if !ok {
		return 2
	}
	rc, err := tune.Tune(c, tune.Config{NoAbandon: *noAbandon})
	if err != nil {
		fmt.Fprintf(stderr, "hmtrace tune: %v\n", err)
		if errors.Is(err, trace.ErrTierMismatch) {
			return 2
		}
		return 1
	}
	dest := *out
	if dest == "" {
		dest = filepath.Join(filepath.Dir(path), tune.ArtifactName)
	}
	if dest == "-" {
		if _, err := stdout.Write(rc.Bytes()); err != nil {
			fmt.Fprintf(stderr, "hmtrace tune: %v\n", err)
			return 1
		}
		return exitCode(damaged)
	}
	if err := rc.Save(dest); err != nil {
		fmt.Fprintf(stderr, "hmtrace tune: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "capture    %s (digest %.12s)\n", filepath.Base(path), rc.CaptureDigest)
	fmt.Fprintf(stdout, "recorded   %-40s %14.6f s\n", knobsBrief(rc.RecordedKnobs), rc.RecordedMakespanS)
	fmt.Fprintf(stdout, "recommends %-40s %14.6f s\n", knobsBrief(rc.Knobs), rc.PredictedMakespanS)
	if rc.RecordedMakespanS > 0 {
		fmt.Fprintf(stdout, "delta      %+.2f%%\n",
			(rc.PredictedMakespanS-rc.RecordedMakespanS)/rc.RecordedMakespanS*100)
	}
	fmt.Fprintf(stdout, "search     %d candidates, %d replays (%d abandoned early, %d memo hits)\n",
		len(rc.Trace), rc.Replays, rc.Abandoned, rc.MemoHits)
	fmt.Fprintf(stderr, "[recommended config written to %s]\n", dest)
	return exitCode(damaged)
}

// knobsBrief renders the replay-relevant knobs compactly.
func knobsBrief(k trace.Knobs) string {
	s := fmt.Sprintf("%s victim=%s", k.Mode, k.EvictPolicy)
	if k.EvictLazily {
		s += " lazy"
	}
	if k.IOThreads > 0 {
		s += fmt.Sprintf(" io=%d", k.IOThreads)
	}
	if k.PrefetchDepth > 0 {
		s += fmt.Sprintf(" depth=%d", k.PrefetchDepth)
	}
	return s
}

// printComparison renders the recorded-vs-replayed table with the
// relative makespan delta.
func printComparison(w io.Writer, rec, rep trace.Outcome) {
	fmt.Fprintf(w, "%-9s %14s %8s %8s %8s %7s %8s  %s\n",
		"", "makespan (s)", "fetches", "refetch", "evicted", "forced", "retries", "knobs")
	for _, o := range []trace.Outcome{rec, rep} {
		fmt.Fprintf(w, "%-9s %14.6f %8d %8d %8d %7d %8d  %s\n",
			o.Label, o.Makespan, o.Fetches, o.Refetches, o.Evictions,
			o.ForcedEvictions, o.StageRetries, knobsBrief(o.Knobs))
	}
	if rec.Makespan > 0 {
		d := (rep.Makespan - rec.Makespan) / rec.Makespan * 100
		fmt.Fprintf(w, "%-9s %+13.2f%%\n", "delta", d)
	}
}
