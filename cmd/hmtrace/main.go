// Command hmtrace inspects, exports and replays hetmem capture files
// (the JSONL traces written by the kernel drivers' -trace flag).
//
// Usage:
//
//	hmtrace summary trace.jsonl
//	hmtrace export [-o out.json] trace.jsonl
//	hmtrace schedule trace.jsonl
//	hmtrace diff a.jsonl b.jsonl
//	hmtrace whatif [-strategy name] [-evict-policy name] [-evict-lazy=bool]
//	        [-io-threads n] [-prefetch-depth n] [-hbm-reserve bytes] trace.jsonl
//
// summary prints the terminal digest: per-lane occupancy, the share of
// staged time hidden under compute, and the exposed staging time.
// export converts the capture to Chrome trace_event JSON (load it in a
// trace viewer: one track per PE plus the IO-thread lanes). schedule
// prints the canonical per-task schedule used by the replay-fidelity
// invariant. whatif reconstructs the captured workload and re-drives it
// through the real scheduler under overridden knobs, then prints a
// recorded-vs-replayed comparison table. diff aligns two captures
// task-by-task and names the first divergent event — the tool to reach
// for when a determinism check reports two runs that should have been
// byte-identical but were not.
//
// Exit status: 0 on success; 2 when the capture is corrupt or
// truncated — the readable prefix is still processed and reported
// before exiting. diff exits 1 when the captures differ.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: hmtrace <command> [flags] trace.jsonl

commands:
  summary    print occupancy, overlap and movement counters
  export     convert to Chrome trace_event JSON (-o file, default stdout)
  schedule   print the canonical per-task schedule
  diff       align two captures task-by-task and name the first divergence
  whatif     replay the workload under different knobs and compare
`

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprint(stderr, usage)
		return 1
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return cmdSummary(rest, stdout, stderr)
	case "export":
		return cmdExport(rest, stdout, stderr)
	case "schedule":
		return cmdSchedule(rest, stdout, stderr)
	case "diff":
		return cmdDiff(rest, stdout, stderr)
	case "whatif":
		return cmdWhatIf(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "hmtrace: unknown command %q\n%s", cmd, usage)
		return 1
	}
}

// load decodes a capture, reporting (but tolerating) corruption: the
// readable prefix is returned with damaged=true so commands can finish
// their report and then exit 2.
func load(path string, stderr io.Writer) (c *trace.Capture, damaged bool, ok bool) {
	c, err := trace.DecodeFile(path)
	if err == nil {
		return c, false, true
	}
	if c == nil || len(c.Events) == 0 {
		fmt.Fprintf(stderr, "hmtrace: %s: %v\n", path, err)
		return nil, true, false
	}
	fmt.Fprintf(stderr, "hmtrace: %s: %v (continuing with the %d events read)\n", path, err, len(c.Events))
	return c, true, true
}

// exitCode maps the damage flag to the final exit status.
func exitCode(damaged bool) int {
	if damaged {
		return 2
	}
	return 0
}

func onePath(fs *flag.FlagSet, stderr io.Writer) (string, bool) {
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "hmtrace %s: want exactly one trace file, got %d args\n", fs.Name(), fs.NArg())
		return "", false
	}
	return fs.Arg(0), true
}

func cmdSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil {
		return 1
	}
	path, ok := onePath(fs, stderr)
	if !ok {
		return 1
	}
	c, damaged, ok := load(path, stderr)
	if !ok {
		return 2
	}
	fmt.Fprint(stdout, trace.Summarize(c).String())
	return exitCode(damaged)
}

func cmdExport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write Chrome trace JSON to this file (default stdout)")
	if fs.Parse(args) != nil {
		return 1
	}
	path, ok := onePath(fs, stderr)
	if !ok {
		return 1
	}
	c, damaged, ok := load(path, stderr)
	if !ok {
		return 2
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "hmtrace export: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := trace.ExportChrome(c, w); err != nil {
		fmt.Fprintf(stderr, "hmtrace export: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stderr, "[chrome trace written to %s]\n", *out)
	}
	return exitCode(damaged)
}

func cmdSchedule(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil {
		return 1
	}
	path, ok := onePath(fs, stderr)
	if !ok {
		return 1
	}
	c, damaged, ok := load(path, stderr)
	if !ok {
		return 2
	}
	fmt.Fprint(stdout, c.ScheduleString())
	return exitCode(damaged)
}

func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil {
		return 1
	}
	if fs.NArg() != 2 {
		fmt.Fprintf(stderr, "hmtrace diff: want exactly two trace files, got %d args\n", fs.NArg())
		return 1
	}
	a, damagedA, ok := load(fs.Arg(0), stderr)
	if !ok {
		return 2
	}
	b, damagedB, ok := load(fs.Arg(1), stderr)
	if !ok {
		return 2
	}
	r := trace.Diff(a, b)
	fmt.Fprint(stdout, r.String())
	if damagedA || damagedB {
		return 2
	}
	if !r.Identical {
		return 1
	}
	return 0
}

// strategies maps the -strategy short names to core mode strings.
var strategies = map[string]core.Mode{
	"ddr4only": core.DDROnly,
	"naive":    core.Baseline,
	"single":   core.SingleIO,
	"noio":     core.NoIO,
	"multi":    core.MultiIO,
}

func cmdWhatIf(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strategy := fs.String("strategy", "", "override the movement strategy: ddr4only, naive, single, noio or multi")
	policy := fs.String("evict-policy", "", "override the eviction victim policy: decl, lru or lookahead")
	lazy := fs.Bool("evict-lazy", false, "override lazy eviction")
	ioThreads := fs.Int("io-threads", 0, "override the IO thread count (single strategy)")
	depth := fs.Int("prefetch-depth", 0, "override the prefetch depth (multi strategy; 0 = unlimited)")
	reserve := fs.Int64("hbm-reserve", 0, "override the HBM reserve in bytes")
	if fs.Parse(args) != nil {
		return 1
	}
	path, ok := onePath(fs, stderr)
	if !ok {
		return 1
	}
	c, damaged, ok := load(path, stderr)
	if !ok {
		return 2
	}
	w, err := trace.Reconstruct(c)
	if err != nil {
		fmt.Fprintf(stderr, "hmtrace whatif: %v\n", err)
		return 2
	}

	knobs := w.Meta.Knobs
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["strategy"] {
		mode, ok := strategies[*strategy]
		if !ok {
			fmt.Fprintf(stderr, "hmtrace whatif: unknown strategy %q (want ddr4only, naive, single, noio or multi)\n", *strategy)
			return 1
		}
		knobs.Mode = mode.String()
	}
	if set["evict-policy"] {
		if _, err := core.ParseEvictPolicy(*policy); err != nil {
			fmt.Fprintf(stderr, "hmtrace whatif: %v\n", err)
			return 1
		}
		knobs.EvictPolicy = *policy
	}
	if set["evict-lazy"] {
		knobs.EvictLazily = *lazy
	}
	if set["io-threads"] {
		knobs.IOThreads = *ioThreads
	}
	if set["prefetch-depth"] {
		knobs.PrefetchDepth = *depth
	}
	if set["hbm-reserve"] {
		knobs.HBMReserve = *reserve
	}

	res, err := w.Replay(trace.ReplayConfig{Knobs: &knobs})
	if err != nil {
		fmt.Fprintf(stderr, "hmtrace whatif: replay: %v\n", err)
		return 1
	}
	printComparison(stdout,
		trace.OutcomeOf("recorded", c),
		trace.OutcomeOf("replayed", res.Capture))
	return exitCode(damaged)
}

// knobsBrief renders the replay-relevant knobs compactly.
func knobsBrief(k trace.Knobs) string {
	s := fmt.Sprintf("%s victim=%s", k.Mode, k.EvictPolicy)
	if k.EvictLazily {
		s += " lazy"
	}
	if k.IOThreads > 0 {
		s += fmt.Sprintf(" io=%d", k.IOThreads)
	}
	if k.PrefetchDepth > 0 {
		s += fmt.Sprintf(" depth=%d", k.PrefetchDepth)
	}
	return s
}

// printComparison renders the recorded-vs-replayed table with the
// relative makespan delta.
func printComparison(w io.Writer, rec, rep trace.Outcome) {
	fmt.Fprintf(w, "%-9s %14s %8s %8s %8s %7s %8s  %s\n",
		"", "makespan (s)", "fetches", "refetch", "evicted", "forced", "retries", "knobs")
	for _, o := range []trace.Outcome{rec, rep} {
		fmt.Fprintf(w, "%-9s %14.6f %8d %8d %8d %7d %8d  %s\n",
			o.Label, o.Makespan, o.Fetches, o.Refetches, o.Evictions,
			o.ForcedEvictions, o.StageRetries, knobsBrief(o.Knobs))
	}
	if rec.Makespan > 0 {
		d := (rep.Makespan - rec.Makespan) / rec.Makespan * 100
		fmt.Fprintf(w, "%-9s %+13.2f%%\n", "delta", d)
	}
}
