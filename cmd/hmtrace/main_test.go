package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/trace"
	"github.com/hetmem/hetmem/internal/tune"
)

// captureFile records a Small-scale stencil run into dir and returns
// the capture path.
func captureFile(t *testing.T, dir string) string {
	t.Helper()
	opts := core.DefaultOptions(core.MultiIO)
	opts.HBMReserve = exp.Small.HBMReserve()
	opts.Metrics = true
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   exp.Small.Machine(),
		NumPEs: exp.Small.NumPEs(),
		Opts:   opts,
		Params: charm.DefaultParams(),
	})
	defer env.Close()
	rec := trace.NewRecorder(env.MG)
	rec.Attach()
	sizes := exp.Small.StencilReducedSizes()
	app, err := kernels.NewStencil(env.MG, exp.Small.StencilConfig(sizes[0]))
	if err != nil {
		t.Fatalf("NewStencil: %v", err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatalf("stencil run: %v", err)
	}
	path := filepath.Join(dir, "capture.jsonl")
	if err := rec.Capture().WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

// exec runs the command and returns (exit code, stdout, stderr).
func exec(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := captureFile(t, dir)

	t.Run("summary", func(t *testing.T) {
		code, out, _ := exec("summary", path)
		if code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
		for _, want := range []string{"capture:", "movement:", "overlap:", "lane"} {
			if !strings.Contains(out, want) {
				t.Errorf("summary output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("schedule", func(t *testing.T) {
		code, out, _ := exec("schedule", path)
		if code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
		if !strings.Contains(out, "stencil3d[0].") {
			t.Errorf("schedule output missing tasks:\n%s", out)
		}
	})

	t.Run("export", func(t *testing.T) {
		out := filepath.Join(dir, "chrome.json")
		code, _, _ := exec("export", "-o", out, path)
		if code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("read export: %v", err)
		}
		for _, want := range []string{"traceEvents", "thread_name", "PE 0"} {
			if !strings.Contains(string(b), want) {
				t.Errorf("chrome export missing %q", want)
			}
		}
	})

	t.Run("whatif", func(t *testing.T) {
		code, out, errb := exec("whatif", "-evict-policy", "lookahead", path)
		if code != 0 {
			t.Fatalf("exit %d, want 0\nstderr: %s", code, errb)
		}
		for _, want := range []string{"recorded", "replayed", "delta", "lookahead"} {
			if !strings.Contains(out, want) {
				t.Errorf("whatif output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("diff identical", func(t *testing.T) {
		code, out, errb := exec("diff", path, path)
		if code != 0 {
			t.Fatalf("exit %d, want 0\nstderr: %s", code, errb)
		}
		if !strings.Contains(out, "captures identical") {
			t.Errorf("diff output: %s", out)
		}
	})

	t.Run("diff divergent", func(t *testing.T) {
		// Re-capture with a different eviction policy: same tasks, a
		// different schedule.
		c, err := trace.DecodeFile(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := trace.Reconstruct(c)
		if err != nil {
			t.Fatal(err)
		}
		knobs := w.Meta.Knobs
		knobs.EvictPolicy = "lookahead"
		res, err := w.Replay(trace.ReplayConfig{Knobs: &knobs})
		if err != nil {
			t.Fatal(err)
		}
		other := filepath.Join(dir, "other.jsonl")
		if err := res.Capture.WriteFile(other); err != nil {
			t.Fatal(err)
		}
		code, out, errb := exec("diff", path, other)
		if code != 1 {
			t.Fatalf("exit %d, want 1\nstderr: %s\nout: %s", code, errb, out)
		}
		for _, want := range []string{"captures differ", "first divergent event at index"} {
			if !strings.Contains(out, want) {
				t.Errorf("diff output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("diff wrong arity", func(t *testing.T) {
		if code, _, _ := exec("diff", path); code != 1 {
			t.Fatalf("diff with one file: exit %d, want 1", code)
		}
	})

	t.Run("whatif bad strategy", func(t *testing.T) {
		code, _, errb := exec("whatif", "-strategy", "bogus", path)
		if code != 1 {
			t.Fatalf("exit %d, want 1\nstderr: %s", code, errb)
		}
	})
}

// sessionCaptureFile records a Small-scale stencil run stamped with a
// hetmemd-style session id and tenant, writing it to dir/<id>.jsonl.
func sessionCaptureFile(t *testing.T, dir, id, tenant string) string {
	t.Helper()
	opts := core.DefaultOptions(core.MultiIO)
	opts.HBMReserve = exp.Small.HBMReserve()
	opts.Metrics = true
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   exp.Small.Machine(),
		NumPEs: exp.Small.NumPEs(),
		Opts:   opts,
		Params: charm.DefaultParams(),
	})
	defer env.Close()
	rec := trace.NewSessionRecorder(env.MG, id, tenant)
	rec.Attach()
	sizes := exp.Small.StencilReducedSizes()
	app, err := kernels.NewStencil(env.MG, exp.Small.StencilConfig(sizes[0]))
	if err != nil {
		t.Fatalf("NewStencil: %v", err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatalf("stencil run: %v", err)
	}
	path := filepath.Join(dir, id+".jsonl")
	if err := rec.Capture().WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

// TestSummarySessions covers the hetmemd capture-dir workflow: summary
// over a directory of session traces, the per-tenant aggregate table,
// and the -session filter on both directories and single files.
func TestSummarySessions(t *testing.T) {
	dir := t.TempDir()
	sessionCaptureFile(t, dir, "s-0001", "acme")
	sessionCaptureFile(t, dir, "s-0002", "acme")
	sessionCaptureFile(t, dir, "s-0003", "beta")

	t.Run("directory aggregates per tenant", func(t *testing.T) {
		code, out, errb := exec("summary", dir)
		if code != 0 {
			t.Fatalf("exit %d, want 0\nstderr: %s", code, errb)
		}
		for _, want := range []string{
			"== s-0001.jsonl", "== s-0002.jsonl", "== s-0003.jsonl",
			"session s-0001 (tenant acme)", "session s-0003 (tenant beta)",
			"per-tenant totals (3 capture(s)):",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("directory summary missing %q:\n%s", want, out)
			}
		}
		// acme aggregated two sessions, beta one.
		acme, beta := false, false
		for _, line := range strings.Split(out, "\n") {
			f := strings.Fields(line)
			if len(f) > 1 && f[0] == "acme" {
				acme = f[1] == "2"
			}
			if len(f) > 1 && f[0] == "beta" {
				beta = f[1] == "1"
			}
		}
		if !acme || !beta {
			t.Errorf("per-tenant session counts wrong:\n%s", out)
		}
	})

	t.Run("session filter on directory", func(t *testing.T) {
		code, out, errb := exec("summary", "-session", "s-0002", dir)
		if code != 0 {
			t.Fatalf("exit %d, want 0\nstderr: %s", code, errb)
		}
		if !strings.Contains(out, "== s-0002.jsonl") || strings.Contains(out, "== s-0001.jsonl") {
			t.Errorf("filter leaked other sessions:\n%s", out)
		}
		if !strings.Contains(out, "per-tenant totals (1 capture(s)):") {
			t.Errorf("filtered aggregate missing:\n%s", out)
		}
	})

	t.Run("session filter misses", func(t *testing.T) {
		code, _, errb := exec("summary", "-session", "nope", dir)
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		if !strings.Contains(errb, `no capture in`) {
			t.Errorf("stderr: %s", errb)
		}
	})

	t.Run("session filter on single file", func(t *testing.T) {
		path := filepath.Join(dir, "s-0001.jsonl")
		if code, out, _ := exec("summary", "-session", "s-0001", path); code != 0 || !strings.Contains(out, "tenant acme") {
			t.Fatalf("exit %d out:\n%s", code, out)
		}
		if code, _, errb := exec("summary", "-session", "s-0002", path); code != 1 || !strings.Contains(errb, "holds session") {
			t.Fatalf("mismatched -session on file: exit %d stderr: %s", code, errb)
		}
	})

	t.Run("empty directory", func(t *testing.T) {
		if code, _, _ := exec("summary", t.TempDir()); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
}

func TestCorruptCapture(t *testing.T) {
	dir := t.TempDir()
	path := captureFile(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-line: the last event line loses its tail.
	trunc := filepath.Join(dir, "trunc.jsonl")
	if err := os.WriteFile(trunc, b[:len(b)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := exec("summary", trunc)
	if code != 2 {
		t.Fatalf("summary of truncated capture: exit %d, want 2\nstderr: %s", code, errb)
	}
	if !strings.Contains(out, "capture:") {
		t.Errorf("truncated summary printed no recovered results:\n%s", out)
	}
	if !strings.Contains(errb, "continuing with") {
		t.Errorf("stderr does not report partial recovery: %s", errb)
	}

	// Garbage from byte 0: nothing recoverable.
	junk := filepath.Join(dir, "junk.jsonl")
	if err := os.WriteFile(junk, []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := exec("summary", junk); code != 2 {
		t.Fatalf("summary of junk: exit %d, want 2", code)
	}

	// Missing file.
	if code, _, _ := exec("summary", filepath.Join(dir, "nope.jsonl")); code != 2 {
		t.Fatalf("summary of missing file: exit %d, want 2", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := exec(); code != 1 {
		t.Fatalf("no args: exit %d, want 1", code)
	}
	if code, _, _ := exec("frobnicate"); code != 1 {
		t.Fatalf("unknown command: exit %d, want 1", code)
	}
	if code, _, _ := exec("summary"); code != 1 {
		t.Fatalf("summary without file: exit %d, want 1", code)
	}
	code, out, _ := exec("help")
	if code != 0 || !strings.Contains(out, "usage: hmtrace") {
		t.Fatalf("help: exit %d out %q", code, out)
	}
}

// TestTuneCommand covers the offline-autotuner CLI surface: the
// artifact lands next to the capture (where summary picks it up as
// provenance), two runs are byte-identical, and the recommended knobs
// feed straight back into whatif.
func TestTuneCommand(t *testing.T) {
	dir := t.TempDir()
	path := captureFile(t, dir)

	code, out, errb := exec("tune", path)
	if code != 0 {
		t.Fatalf("tune: exit %d, want 0\nstderr: %s", code, errb)
	}
	for _, want := range []string{"recorded", "recommends", "search"} {
		if !strings.Contains(out, want) {
			t.Errorf("tune output missing %q:\n%s", want, out)
		}
	}
	artifact := filepath.Join(dir, tune.ArtifactName)
	rc, err := tune.Load(artifact)
	if err != nil {
		t.Fatalf("tune wrote no loadable artifact: %v", err)
	}

	t.Run("byte identical", func(t *testing.T) {
		a := filepath.Join(dir, "a.json")
		b := filepath.Join(dir, "b.json")
		if code, _, errb := exec("tune", "-o", a, path); code != 0 {
			t.Fatalf("tune -o a: exit %d\n%s", code, errb)
		}
		if code, _, errb := exec("tune", "-o", b, path); code != 0 {
			t.Fatalf("tune -o b: exit %d\n%s", code, errb)
		}
		ba, err := os.ReadFile(a)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("two tune runs differ:\n%s\nvs\n%s", ba, bb)
		}
	})

	t.Run("summary provenance", func(t *testing.T) {
		code, out, _ := exec("summary", path)
		if code != 0 {
			t.Fatalf("summary: exit %d", code)
		}
		for _, want := range []string{"tune provenance", "recommends", "computed from capture.jsonl"} {
			if !strings.Contains(out, want) {
				t.Errorf("summary missing %q:\n%s", want, out)
			}
		}
		code, out, _ = exec("summary", dir)
		if code != 0 {
			t.Fatalf("summary dir: exit %d", code)
		}
		if !strings.Contains(out, "tune provenance") {
			t.Errorf("directory summary missing provenance:\n%s", out)
		}
	})

	t.Run("whatif recommended", func(t *testing.T) {
		args := []string{"whatif", "-evict-policy", rc.Knobs.EvictPolicy}
		if rc.Knobs.PrefetchDepth > 0 {
			args = append(args, "-prefetch-depth", fmt.Sprint(rc.Knobs.PrefetchDepth))
		}
		if rc.Knobs.IOThreads > 0 {
			args = append(args, "-io-threads", fmt.Sprint(rc.Knobs.IOThreads))
		}
		args = append(args, path)
		code, out, errb := exec(args...)
		if code != 0 {
			t.Fatalf("whatif under recommended knobs: exit %d\nstderr: %s", code, errb)
		}
		if !strings.Contains(out, "replayed") {
			t.Errorf("whatif output:\n%s", out)
		}
	})

	t.Run("whatif abandon", func(t *testing.T) {
		code, out, errb := exec("whatif", "-strategy", "single", "-abandon-above", "1e-6", path)
		if code != 0 {
			t.Fatalf("abandoning whatif: exit %d\nstderr: %s", code, errb)
		}
		if !strings.Contains(out, "provably >=") {
			t.Errorf("abandoned whatif did not report its lower bound:\n%s", out)
		}
	})

	t.Run("stdout artifact", func(t *testing.T) {
		code, out, _ := exec("tune", "-o", "-", path)
		if code != 0 {
			t.Fatalf("tune -o -: exit %d", code)
		}
		if !strings.Contains(out, `"version": 1`) {
			t.Errorf("stdout artifact malformed:\n%.400s", out)
		}
	})
}
