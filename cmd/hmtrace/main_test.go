package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/trace"
)

// captureFile records a Small-scale stencil run into dir and returns
// the capture path.
func captureFile(t *testing.T, dir string) string {
	t.Helper()
	opts := core.DefaultOptions(core.MultiIO)
	opts.HBMReserve = exp.Small.HBMReserve()
	opts.Metrics = true
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   exp.Small.Machine(),
		NumPEs: exp.Small.NumPEs(),
		Opts:   opts,
		Params: charm.DefaultParams(),
	})
	defer env.Close()
	rec := trace.NewRecorder(env.MG)
	rec.Attach()
	sizes := exp.Small.StencilReducedSizes()
	app, err := kernels.NewStencil(env.MG, exp.Small.StencilConfig(sizes[0]))
	if err != nil {
		t.Fatalf("NewStencil: %v", err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatalf("stencil run: %v", err)
	}
	path := filepath.Join(dir, "capture.jsonl")
	if err := rec.Capture().WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

// exec runs the command and returns (exit code, stdout, stderr).
func exec(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := captureFile(t, dir)

	t.Run("summary", func(t *testing.T) {
		code, out, _ := exec("summary", path)
		if code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
		for _, want := range []string{"capture:", "movement:", "overlap:", "lane"} {
			if !strings.Contains(out, want) {
				t.Errorf("summary output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("schedule", func(t *testing.T) {
		code, out, _ := exec("schedule", path)
		if code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
		if !strings.Contains(out, "stencil3d[0].") {
			t.Errorf("schedule output missing tasks:\n%s", out)
		}
	})

	t.Run("export", func(t *testing.T) {
		out := filepath.Join(dir, "chrome.json")
		code, _, _ := exec("export", "-o", out, path)
		if code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("read export: %v", err)
		}
		for _, want := range []string{"traceEvents", "thread_name", "PE 0"} {
			if !strings.Contains(string(b), want) {
				t.Errorf("chrome export missing %q", want)
			}
		}
	})

	t.Run("whatif", func(t *testing.T) {
		code, out, errb := exec("whatif", "-evict-policy", "lookahead", path)
		if code != 0 {
			t.Fatalf("exit %d, want 0\nstderr: %s", code, errb)
		}
		for _, want := range []string{"recorded", "replayed", "delta", "lookahead"} {
			if !strings.Contains(out, want) {
				t.Errorf("whatif output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("diff identical", func(t *testing.T) {
		code, out, errb := exec("diff", path, path)
		if code != 0 {
			t.Fatalf("exit %d, want 0\nstderr: %s", code, errb)
		}
		if !strings.Contains(out, "captures identical") {
			t.Errorf("diff output: %s", out)
		}
	})

	t.Run("diff divergent", func(t *testing.T) {
		// Re-capture with a different eviction policy: same tasks, a
		// different schedule.
		c, err := trace.DecodeFile(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := trace.Reconstruct(c)
		if err != nil {
			t.Fatal(err)
		}
		knobs := w.Meta.Knobs
		knobs.EvictPolicy = "lookahead"
		res, err := w.Replay(trace.ReplayConfig{Knobs: &knobs})
		if err != nil {
			t.Fatal(err)
		}
		other := filepath.Join(dir, "other.jsonl")
		if err := res.Capture.WriteFile(other); err != nil {
			t.Fatal(err)
		}
		code, out, errb := exec("diff", path, other)
		if code != 1 {
			t.Fatalf("exit %d, want 1\nstderr: %s\nout: %s", code, errb, out)
		}
		for _, want := range []string{"captures differ", "first divergent event at index"} {
			if !strings.Contains(out, want) {
				t.Errorf("diff output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("diff wrong arity", func(t *testing.T) {
		if code, _, _ := exec("diff", path); code != 1 {
			t.Fatalf("diff with one file: exit %d, want 1", code)
		}
	})

	t.Run("whatif bad strategy", func(t *testing.T) {
		code, _, errb := exec("whatif", "-strategy", "bogus", path)
		if code != 1 {
			t.Fatalf("exit %d, want 1\nstderr: %s", code, errb)
		}
	})
}

func TestCorruptCapture(t *testing.T) {
	dir := t.TempDir()
	path := captureFile(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-line: the last event line loses its tail.
	trunc := filepath.Join(dir, "trunc.jsonl")
	if err := os.WriteFile(trunc, b[:len(b)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := exec("summary", trunc)
	if code != 2 {
		t.Fatalf("summary of truncated capture: exit %d, want 2\nstderr: %s", code, errb)
	}
	if !strings.Contains(out, "capture:") {
		t.Errorf("truncated summary printed no recovered results:\n%s", out)
	}
	if !strings.Contains(errb, "continuing with") {
		t.Errorf("stderr does not report partial recovery: %s", errb)
	}

	// Garbage from byte 0: nothing recoverable.
	junk := filepath.Join(dir, "junk.jsonl")
	if err := os.WriteFile(junk, []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := exec("summary", junk); code != 2 {
		t.Fatalf("summary of junk: exit %d, want 2", code)
	}

	// Missing file.
	if code, _, _ := exec("summary", filepath.Join(dir, "nope.jsonl")); code != 2 {
		t.Fatalf("summary of missing file: exit %d, want 2", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := exec(); code != 1 {
		t.Fatalf("no args: exit %d, want 1", code)
	}
	if code, _, _ := exec("frobnicate"); code != 1 {
		t.Fatalf("unknown command: exit %d, want 1", code)
	}
	if code, _, _ := exec("summary"); code != 1 {
		t.Fatalf("summary without file: exit %d, want 1", code)
	}
	code, out, _ := exec("help")
	if code != 0 || !strings.Contains(out, "usage: hmtrace") {
		t.Fatalf("help: exit %d out %q", code, out)
	}
}
