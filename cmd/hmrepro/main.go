// Command hmrepro regenerates every table and figure of the paper's
// evaluation (Figs. 1, 2, 5-6, 7, 8, 9) plus the extension experiments
// (X1-X15), printing one text table per figure.
//
// Usage:
//
//	hmrepro [-scale full|small] [-skip-ext] [-audit] [-adapt] [-bench-adapt file]
//	        [-evict] [-bench-evict file] [-evict-policy decl|lru|lookahead]
//	        [-replay] [-bench-trace file] [-trace file]
//	        [-engine] [-bench-engine file]
//	        [-serve] [-bench-serve file]
//	        [-tiers] [-bench-tiers file]
//	        [-tune] [-bench-tune file]
//
// With -audit every simulated run carries the invariant auditor from
// internal/audit: conservation laws are checked continuously, the
// watchdog reports silent stalls, and one JSON metrics snapshot per run
// is printed after each figure. Any invariant violation makes the
// command exit nonzero.
//
// -adapt runs only X9, the online adaptive controller against the
// fixed-configuration grid (adaptive runs always carry the auditor).
// -bench-adapt additionally writes the X9 comparison as a JSON
// benchmark snapshot (adaptive vs best and worst fixed per point).
//
// -evict runs only X10, the eviction victim-selection comparison
// (DeclOrder vs LRU vs Lookahead plus the adaptive mid-run shift);
// -bench-evict writes its JSON snapshot. -evict-policy forces a victim
// policy on every movement-mode run of the other figures.
//
// -replay runs only X11, the trace replay validation (capture the Fig 8
// overflow run, replay it byte-identically, and check what-if policy
// deltas against real runs). -bench-trace writes its JSON snapshot
// (including the capture-overhead measurement); -trace writes the
// sample capture itself for hmtrace to inspect.
//
// -engine runs only X12, the engine hot-path benchmark (scheduler
// throughput at 10k/100k/1M tasks plus the serial-vs-parallel cluster
// substrate check). X12's numbers are host wall-clock — the one figure
// that is not deterministic — so it never runs by default.
// -bench-engine writes its JSON snapshot, including the recorded
// pre-overhaul baseline and the speedup against it.
//
// -serve runs only X13, the multi-tenant service experiment: the
// hetmemd scheduler under Poisson session arrivals (three symmetric
// tenants, three arrival rates) plus the budget-isolation run (small
// tenant vs staging hogs, fair lanes on/off). X13 is fully virtual-time
// and deterministic, so it is part of the default extension sweep.
// -bench-serve writes its JSON snapshot (implies -serve); whenever X13
// runs, a failed isolation gate (Pass() false) makes the command exit
// nonzero.
//
// -tiers runs only X14, the memory-chain depth sweep: the Fig 8 and
// Fig 9 overflow points on 2-, 3- and 4-tier machines (+NVM, +remote
// pool) under the DeclOrder and Lookahead victim policies. X14 is
// fully virtual-time and deterministic, so it is part of the default
// extension sweep. -bench-tiers writes its JSON snapshot (implies
// -tiers); whenever X14 runs, a failed widening-advantage gate
// (Pass() error) makes the command exit nonzero.
//
// -tune runs only X15, the closed tuning loop: the trace-driven offline
// autotuner (internal/tune) over a capture of the X10 shift workload,
// plus the warm-started online controller (adapt.Config.Warm) against
// the cold climb on every X9 operating point. X15 is fully virtual-time
// and deterministic, so it is part of the default extension sweep.
// -bench-tune writes its JSON snapshot (implies -tune); whenever X15
// runs, a failed gate — a warm start not settling strictly earlier than
// the cold climb on some point, or the offline search not recommending
// the lookahead victim policy X10 measures — makes the command exit
// nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmrepro: ")
	scaleName := flag.String("scale", "full", "experiment scale: full (paper sizes) or small (1/8 slice)")
	skipExt := flag.Bool("skip-ext", false, "skip the extension experiments X1-X15")
	auditOn := flag.Bool("audit", false, "enable the invariant auditor and print JSON metrics per run")
	adaptOnly := flag.Bool("adapt", false, "run only X9: the online adaptive controller vs fixed configurations")
	benchAdapt := flag.String("bench-adapt", "", "write the X9 result to this file as a JSON benchmark snapshot")
	evictOnly := flag.Bool("evict", false, "run only X10: eviction victim selection under pressure + mid-run shift")
	benchEvict := flag.String("bench-evict", "", "write the X10 result to this file as a JSON benchmark snapshot")
	policyName := flag.String("evict-policy", "", "force an eviction victim policy on movement-mode runs: decl, lru or lookahead")
	replayOnly := flag.Bool("replay", false, "run only X11: trace replay fidelity + what-if consistency")
	benchTrace := flag.String("bench-trace", "", "write the X11 result to this file as a JSON benchmark snapshot")
	traceOut := flag.String("trace", "", "write X11's sample capture (the fig8 overflow run) to this JSONL file")
	engineOnly := flag.Bool("engine", false, "run only X12: engine hot-path throughput + parallel cluster substrate (wall-clock)")
	benchEngine := flag.String("bench-engine", "", "write the X12 result to this file as a JSON benchmark snapshot (implies -engine)")
	serveOnly := flag.Bool("serve", false, "run only X13: multi-tenant service arrivals + budget isolation")
	benchServe := flag.String("bench-serve", "", "write the X13 result to this file as a JSON benchmark snapshot (implies -serve)")
	tiersOnly := flag.Bool("tiers", false, "run only X14: victim policies across 2-/3-/4-tier memory chains")
	benchTiers := flag.String("bench-tiers", "", "write the X14 result to this file as a JSON benchmark snapshot (implies -tiers)")
	tuneOnly := flag.Bool("tune", false, "run only X15: offline autotuner + warm-started online adaptation")
	benchTune := flag.String("bench-tune", "", "write the X15 result to this file as a JSON benchmark snapshot (implies -tune)")
	flag.Parse()

	scale, err := parseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	if *auditOn {
		exp.SetAudit(true)
	}
	if *policyName != "" {
		pol, err := core.ParseEvictPolicy(*policyName)
		if err != nil {
			log.Fatal(err)
		}
		exp.SetEvictPolicy(pol)
	}

	// X9's and X10's results are kept for -bench-* emission after the
	// tables.
	var x9 *exp.X9Result
	runX9 := func() (fmt.Stringer, error) {
		r, err := exp.RunX9(scale)
		if err != nil {
			return nil, err
		}
		x9 = r
		return r.Table(), nil
	}
	var x10 *exp.X10Result
	runX10 := func() (fmt.Stringer, error) {
		r, err := exp.RunX10(scale)
		if err != nil {
			return nil, err
		}
		x10 = r
		return r.Table(), nil
	}
	var x11 *exp.X11Result
	runX11 := func() (fmt.Stringer, error) {
		r, err := exp.RunX11(scale)
		if err != nil {
			return nil, err
		}
		x11 = r
		return r.Table(), nil
	}
	var x12 *exp.X12Result
	runX12 := func() (fmt.Stringer, error) {
		r, err := exp.RunX12(scale)
		if err != nil {
			return nil, err
		}
		x12 = r
		return r.Table(), nil
	}
	var x13 *exp.X13Result
	runX13 := func() (fmt.Stringer, error) {
		r, err := exp.RunX13(scale)
		if err != nil {
			return nil, err
		}
		x13 = r
		return r.Table(), nil
	}

	var x14 *exp.X14Result
	runX14 := func() (fmt.Stringer, error) {
		r, err := exp.RunX14(scale)
		if err != nil {
			return nil, err
		}
		x14 = r
		return r.Table(), nil
	}

	var x15 *exp.X15Result
	runX15 := func() (fmt.Stringer, error) {
		r, err := exp.RunX15(scale)
		if err != nil {
			return nil, err
		}
		x15 = r
		return r.Table(), nil
	}

	type figure struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	figures := []figure{
		{"Fig 1", func() (fmt.Stringer, error) { return tbl(exp.RunFig1(scale)) }},
		{"Fig 2", func() (fmt.Stringer, error) { return tbl(exp.RunFig2(scale)) }},
		{"Figs 5-6", func() (fmt.Stringer, error) { return tbl(exp.RunFig56(scale)) }},
		{"Fig 7", func() (fmt.Stringer, error) { return tbl(exp.RunFig7(scale)) }},
		{"Fig 8", func() (fmt.Stringer, error) { return tbl(exp.RunFig8(scale)) }},
		{"Fig 9", func() (fmt.Stringer, error) { return tbl(exp.RunFig9(scale)) }},
	}
	if !*skipExt {
		figures = append(figures,
			figure{"X1", func() (fmt.Stringer, error) { return tbl(exp.RunCacheMode(scale)) }},
			figure{"X2", func() (fmt.Stringer, error) { return tbl(exp.RunAblationQueues(scale)) }},
			figure{"X3", func() (fmt.Stringer, error) { return tbl(exp.RunAblationIOThreads(scale)) }},
			figure{"X4", func() (fmt.Stringer, error) { return tbl(exp.RunAblationEviction(scale)) }},
			figure{"X5", func() (fmt.Stringer, error) { return tbl(exp.RunNVM(scale)) }},
			figure{"X6", func() (fmt.Stringer, error) { return tbl(exp.RunAblationPrefetchDepth(scale)) }},
			figure{"X7", func() (fmt.Stringer, error) { return tbl(exp.RunLoadBalance(scale)) }},
			figure{"X8", func() (fmt.Stringer, error) { return tbl(exp.RunCluster(scale)) }},
			figure{"X9", runX9},
			figure{"X10", runX10},
			figure{"X11", runX11},
			figure{"X13", runX13},
			figure{"X14", runX14},
			figure{"X15", runX15},
		)
	}
	if *adaptOnly {
		figures = []figure{{"X9", runX9}}
	}
	if *evictOnly {
		figures = []figure{{"X10", runX10}}
	}
	if *replayOnly {
		figures = []figure{{"X11", runX11}}
	}
	if *engineOnly || *benchEngine != "" {
		figures = []figure{{"X12", runX12}}
	}
	if *serveOnly || *benchServe != "" {
		figures = []figure{{"X13", runX13}}
	}
	if *tiersOnly || *benchTiers != "" {
		figures = []figure{{"X14", runX14}}
	}
	if *tuneOnly || *benchTune != "" {
		figures = []figure{{"X15", runX15}}
	}

	fmt.Printf("hetmem reproduction — %s scale\n\n", scale)
	var totalViolations int64
	for _, f := range figures {
		// Wall-clock here times the reproduction itself for the stderr
		// progress note; every number on stdout is virtual-time.
		start := time.Now() //hmlint:ignore determinism wall-clock progress timing, stderr only
		t, err := f.run()
		if err != nil {
			log.Fatalf("%s: %v", f.name, err)
		}
		fmt.Println(t)
		if *auditOn {
			totalViolations += reportAudit(f.name)
		}
		//hmlint:ignore determinism wall-clock progress note goes to stderr, not the tables
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", f.name, time.Since(start).Round(time.Millisecond))
	}
	if *benchAdapt != "" {
		if x9 == nil {
			log.Fatal("-bench-adapt needs the X9 figure (drop -skip-ext or pass -adapt)")
		}
		out, err := json.MarshalIndent(x9.Bench(), "", "  ")
		if err != nil {
			log.Fatalf("bench-adapt: %v", err)
		}
		if err := os.WriteFile(*benchAdapt, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("bench-adapt: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[bench snapshot written to %s]\n", *benchAdapt)
	}
	if *benchEvict != "" {
		if x10 == nil {
			log.Fatal("-bench-evict needs the X10 figure (drop -skip-ext or pass -evict)")
		}
		out, err := json.MarshalIndent(x10.Bench(), "", "  ")
		if err != nil {
			log.Fatalf("bench-evict: %v", err)
		}
		if err := os.WriteFile(*benchEvict, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("bench-evict: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[bench snapshot written to %s]\n", *benchEvict)
	}
	if *benchTrace != "" {
		if x11 == nil {
			log.Fatal("-bench-trace needs the X11 figure (drop -skip-ext or pass -replay)")
		}
		out, err := json.MarshalIndent(x11.Bench(), "", "  ")
		if err != nil {
			log.Fatalf("bench-trace: %v", err)
		}
		if err := os.WriteFile(*benchTrace, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("bench-trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[bench snapshot written to %s]\n", *benchTrace)
	}
	if *benchEngine != "" {
		if x12 == nil {
			log.Fatal("-bench-engine needs the X12 figure (pass -engine)")
		}
		out, err := json.MarshalIndent(x12.Bench(), "", "  ")
		if err != nil {
			log.Fatalf("bench-engine: %v", err)
		}
		if err := os.WriteFile(*benchEngine, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("bench-engine: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[bench snapshot written to %s]\n", *benchEngine)
	}
	if *benchServe != "" {
		if x13 == nil {
			log.Fatal("-bench-serve needs the X13 figure (pass -serve)")
		}
		out, err := json.MarshalIndent(x13.Bench(), "", "  ")
		if err != nil {
			log.Fatalf("bench-serve: %v", err)
		}
		if err := os.WriteFile(*benchServe, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("bench-serve: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[bench snapshot written to %s]\n", *benchServe)
	}
	if *benchTiers != "" {
		if x14 == nil {
			log.Fatal("-bench-tiers needs the X14 figure (pass -tiers)")
		}
		out, err := json.MarshalIndent(x14.Bench(), "", "  ")
		if err != nil {
			log.Fatalf("bench-tiers: %v", err)
		}
		if err := os.WriteFile(*benchTiers, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("bench-tiers: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[bench snapshot written to %s]\n", *benchTiers)
	}
	if *benchTune != "" {
		if x15 == nil {
			log.Fatal("-bench-tune needs the X15 figure (pass -tune)")
		}
		out, err := json.MarshalIndent(x15.Bench(), "", "  ")
		if err != nil {
			log.Fatalf("bench-tune: %v", err)
		}
		if err := os.WriteFile(*benchTune, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("bench-tune: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[bench snapshot written to %s]\n", *benchTune)
	}
	if *traceOut != "" {
		if x11 == nil || x11.Sample == nil {
			log.Fatal("-trace needs the X11 figure (drop -skip-ext or pass -replay)")
		}
		if err := x11.Sample.WriteFile(*traceOut); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[sample capture written to %s]\n", *traceOut)
	}
	if totalViolations > 0 {
		log.Fatalf("audit: %d invariant violation(s) detected", totalViolations)
	}
	if x11 != nil && (!x11.Identical || !x11.Consistent()) {
		log.Fatal("X11: replay validation failed (see table above)")
	}
	if x12 != nil && !x12.Cluster.Identical {
		log.Fatal("X12: serial and parallel cluster runs diverged (see table above)")
	}
	if x13 != nil && !x13.Pass() {
		log.Fatal("X13: budget isolation gate failed (see table above)")
	}
	if x14 != nil {
		if err := x14.Pass(); err != nil {
			log.Fatalf("X14: widening-advantage gate failed: %v", err)
		}
	}
	if x15 != nil {
		if err := x15.Pass(); err != nil {
			log.Fatalf("X15: closed-loop tuning gate failed: %v", err)
		}
	}
}

// reportAudit drains the snapshots produced while a figure ran, prints
// them as JSON and returns the violation count.
func reportAudit(figure string) int64 {
	snaps, violations := exp.DrainAudit()
	for i := range snaps {
		snaps[i].Label = fmt.Sprintf("%s run %d", figure, i)
	}
	out, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		log.Fatalf("%s: marshal audit snapshots: %v", figure, err)
	}
	fmt.Printf("audit[%s]: %s\n\n", figure, out)
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "[%s: %d invariant violation(s)]\n", figure, violations)
	}
	return violations
}

// tabler is any experiment result with a Table.
type tabler interface{ Table() exp.Table }

// tbl adapts (result, err) pairs to (Stringer, error).
func tbl[T tabler](r T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return r.Table(), nil
}

func parseScale(name string) (exp.Scale, error) {
	switch name {
	case "full":
		return exp.Full, nil
	case "small":
		return exp.Small, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want full or small)", name)
	}
}
