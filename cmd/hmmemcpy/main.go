// Command hmmemcpy measures the cost of the data-migration memcpy
// between the memory nodes under many-thread contention (Fig. 7).
//
// Usage:
//
//	hmmemcpy [-scale full|small]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/hetmem/hetmem/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmmemcpy: ")
	scaleName := flag.String("scale", "full", "experiment scale: full or small")
	flag.Parse()
	scale := exp.Full
	if *scaleName == "small" {
		scale = exp.Small
	}
	r, err := exp.RunFig7(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table())
}
