// Command hmstream runs the STREAM bandwidth benchmark on the
// simulated machine's memory nodes (Fig. 1 of the paper).
//
// Usage:
//
//	hmstream [-threads 64] [-array 256MiB-in-bytes] [-quadrant]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/hetmem/hetmem/internal/stream"
	"github.com/hetmem/hetmem/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmstream: ")
	threads := flag.Int("threads", 64, "concurrent STREAM threads")
	arrayBytes := flag.Int64("array", 256<<20, "per-thread STREAM array size in bytes")
	quadrant := flag.Bool("quadrant", false, "use quadrant cluster mode instead of all-to-all")
	flag.Parse()

	spec := topology.KNL7250()
	if *quadrant {
		spec.ClusterMode = topology.Quadrant
	}
	fmt.Printf("%s, %s cluster mode, %d threads\n\n", spec.Name, spec.ClusterMode, *threads)
	for _, node := range []int{topology.DDRNodeID, topology.HBMNodeID} {
		results, err := stream.Measure(spec, node, *threads, *arrayBytes)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Println(r)
		}
		fmt.Println()
	}
}
