// Command hmstencil runs the Stencil3D benchmark under a chosen
// strategy, or the full Fig. 2 / Fig. 8 sweeps.
//
// Usage:
//
//	hmstencil -fig 8 [-scale full|small]     # strategy sweep (Fig 8)
//	hmstencil -fig 2                          # HBM vs DDR4 (Fig 2)
//	hmstencil -mode multi -reduced 4 -total 32  # one run, sizes in GB
//	hmstencil -mode single -adapt             # adaptive run with convergence trace
//	hmstencil -mode multi -audit              # invariant audit + JSON metrics
//	hmstencil -mode multi -trace out.jsonl    # record the run for hmtrace
//	hmstencil -mode multi -tiers 3            # run on a 3-tier HBM/DDR4/NVM chain
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmstencil: ")
	fig := flag.Int("fig", 0, "reproduce a figure: 2 or 8 (0 = single run)")
	scaleName := flag.String("scale", "full", "experiment scale: full or small")
	modeName := flag.String("mode", "multi", "strategy: ddr, naive, single, no, multi")
	reduced := flag.Int64("reduced", 4, "reduced working set in GB")
	total := flag.Int64("total", 32, "total working set in GB")
	iters := flag.Int("iters", 4, "outer iterations")
	auditOn := flag.Bool("audit", false, "enable the invariant auditor and print a JSON metrics snapshot")
	adaptOn := flag.Bool("adapt", false, "attach the online adaptive controller and print its convergence trace")
	policyName := flag.String("evict-policy", "", "eviction victim policy for movement modes: decl, lru or lookahead")
	traceOut := flag.String("trace", "", "record the single run as a JSONL capture to this file (inspect with hmtrace)")
	tiers := flag.Int("tiers", 2, "memory chain depth for the single run: 2 (HBM/DDR4), 3 (+NVM) or 4 (+remote pool)")
	flag.Parse()

	scale := exp.Full
	if *scaleName == "small" {
		scale = exp.Small
	}
	var pol core.EvictPolicy
	if *policyName != "" {
		var err error
		if pol, err = core.ParseEvictPolicy(*policyName); err != nil {
			log.Fatal(err)
		}
		exp.SetEvictPolicy(pol)
	}
	if *traceOut != "" && *fig != 0 {
		log.Fatal("-trace records a single run; it cannot be combined with -fig (drop -fig, pick -mode)")
	}
	switch *fig {
	case 2:
		r, err := exp.RunFig2(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Table())
	case 8:
		r, err := exp.RunFig8(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Table())
	case 0:
		mode, err := parseMode(*modeName)
		if err != nil {
			log.Fatal(err)
		}
		cfg := kernels.DefaultStencilConfig()
		cfg.ReducedBytes = *reduced << 30
		cfg.TotalBytes = *total << 30
		cfg.Iterations = *iters
		opts := core.DefaultOptions(mode)
		opts.Audit = *auditOn
		opts.Metrics = *auditOn || *adaptOn
		if pol != nil && mode.Moves() {
			opts.EvictPolicy = pol
		}
		spec, err := exp.Full.TieredMachine(*tiers)
		if err != nil {
			log.Fatal(err)
		}
		env := kernels.NewEnv(kernels.EnvConfig{
			Spec:   spec,
			NumPEs: cfg.NumPEs,
			Opts:   opts,
			Trace:  *adaptOn,
		})
		defer env.Close()
		var rec *trace.Recorder
		if *traceOut != "" {
			rec = trace.NewRecorder(env.MG)
			rec.Attach()
		}
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var ctl *adapt.Controller
		if *adaptOn {
			ctl, err = adapt.New(env.MG, adapt.Config{})
			if err != nil {
				log.Fatal(err)
			}
			ctl.Attach()
			if rec != nil {
				rec.AttachController(ctl)
			}
			app.OnIteration = func(_ int, resume func()) {
				ctl.Barrier()
				resume()
			}
		}
		t, err := app.Run()
		if err != nil {
			log.Fatal(err)
		}
		st := env.MG.Stats
		fmt.Printf("Stencil3D %s: total %s, reduced %s, %d chares, %d iterations\n",
			mode, gb(cfg.TotalBytes), gb(cfg.ReducedBytes), cfg.NumChares(), cfg.Iterations)
		fmt.Printf("  total time    %8.3f s (avg iteration %.3f s)\n", t, app.AvgIterTime())
		fmt.Printf("  fetches       %8d (%.1f GB)\n", st.Fetches, float64(st.BytesFetched)/float64(1<<30))
		fmt.Printf("  evictions     %8d (%.1f GB)\n", st.Evictions, float64(st.BytesEvicted)/float64(1<<30))
		if ctl != nil {
			fmt.Printf("adaptive controller (settled window %d):\n%s", ctl.ConvergedWindow(), ctl.TraceString())
		}
		if rec != nil {
			if err := rec.Capture().WriteFile(*traceOut); err != nil {
				log.Fatalf("write trace: %v", err)
			}
			fmt.Printf("trace: %d events written to %s\n", len(rec.Capture().Events), *traceOut)
		}
		if snap, ok := env.MG.AuditSnapshot(); ok {
			snap.Label = fmt.Sprintf("stencil %s %dGB", mode, *total)
			out, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				log.Fatalf("marshal audit snapshot: %v", err)
			}
			fmt.Printf("audit: %s\n", out)
			if snap.ViolationCount > 0 {
				log.Fatalf("audit: %d invariant violation(s) detected", snap.ViolationCount)
			}
		}
	default:
		log.Fatalf("unknown figure %d (want 2 or 8)", *fig)
	}
}

func parseMode(name string) (core.Mode, error) {
	switch name {
	case "ddr":
		return core.DDROnly, nil
	case "naive":
		return core.Baseline, nil
	case "single":
		return core.SingleIO, nil
	case "no":
		return core.NoIO, nil
	case "multi":
		return core.MultiIO, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func gb(b int64) string { return fmt.Sprintf("%.3g GB", float64(b)/float64(1<<30)) }
