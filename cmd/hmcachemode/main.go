// Command hmcachemode compares flat-mode runtime-managed prefetching
// against KNL's hardware cache mode (the comparison the paper defers
// to future work; experiment X1).
//
// Usage:
//
//	hmcachemode [-scale full|small]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/hetmem/hetmem/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmcachemode: ")
	scaleName := flag.String("scale", "full", "experiment scale: full or small")
	flag.Parse()
	scale := exp.Full
	if *scaleName == "small" {
		scale = exp.Small
	}
	r, err := exp.RunCacheMode(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table())
}
