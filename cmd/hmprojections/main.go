// Command hmprojections reproduces the paper's Projections analysis
// (Figs. 5 and 6): per-strategy utilization/overhead breakdowns plus
// ASCII activity timelines, with optional JSON span export.
//
// Usage:
//
//	hmprojections [-scale full|small] [-timelines] [-json dir] [-audit]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmprojections: ")
	scaleName := flag.String("scale", "small", "experiment scale: full or small (timelines are readable at small)")
	timelines := flag.Bool("timelines", true, "print ASCII activity timelines")
	jsonDir := flag.String("json", "", "directory to write per-strategy span logs (Projections JSON export)")
	auditOn := flag.Bool("audit", false, "enable the invariant auditor and print JSON metrics per run")
	flag.Parse()

	scale := exp.Full
	if *scaleName == "small" {
		scale = exp.Small
	}
	if *auditOn {
		exp.SetAudit(true)
	}
	r, err := exp.RunFig56(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table())
	if *auditOn {
		snaps, violations := exp.DrainAudit()
		for i := range snaps {
			snaps[i].Label = fmt.Sprintf("fig56 run %d", i)
		}
		out, err := json.MarshalIndent(snaps, "", "  ")
		if err != nil {
			log.Fatalf("marshal audit snapshots: %v", err)
		}
		fmt.Printf("audit: %s\n", out)
		if violations > 0 {
			log.Fatalf("audit: %d invariant violation(s) detected", violations)
		}
	}
	if *timelines {
		for _, mode := range []core.Mode{core.Baseline, core.SingleIO, core.NoIO, core.MultiIO} {
			fmt.Printf("--- %s ---\n%s\n", mode, r.Runs[mode].Timeline)
		}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, mode := range []core.Mode{core.Baseline, core.SingleIO, core.NoIO, core.MultiIO} {
			name := strings.ReplaceAll(strings.ToLower(mode.String()), " ", "-") + ".json"
			path := filepath.Join(*jsonDir, name)
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.Runs[mode].WriteSpans(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
