// Command hmprojections reproduces the paper's Projections analysis
// (Figs. 5 and 6): per-strategy utilization/overhead breakdowns plus
// ASCII activity timelines, with optional JSON span export.
//
// Usage:
//
//	hmprojections [-scale full|small] [-timelines] [-json dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmprojections: ")
	scaleName := flag.String("scale", "small", "experiment scale: full or small (timelines are readable at small)")
	timelines := flag.Bool("timelines", true, "print ASCII activity timelines")
	jsonDir := flag.String("json", "", "directory to write per-strategy span logs (Projections JSON export)")
	flag.Parse()

	scale := exp.Full
	if *scaleName == "small" {
		scale = exp.Small
	}
	r, err := exp.RunFig56(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table())
	if *timelines {
		for _, mode := range []core.Mode{core.Baseline, core.SingleIO, core.NoIO, core.MultiIO} {
			fmt.Printf("--- %s ---\n%s\n", mode, r.Runs[mode].Timeline)
		}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, mode := range []core.Mode{core.Baseline, core.SingleIO, core.NoIO, core.MultiIO} {
			name := strings.ReplaceAll(strings.ToLower(mode.String()), " ", "-") + ".json"
			path := filepath.Join(*jsonDir, name)
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.Runs[mode].WriteSpans(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
