GO ?= go
# Pinned staticcheck release; CI installs exactly this version so the
# gate does not drift with upstream.
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: ci vet build test race audit lint hmlint staticcheck lint-fix-check fuzz bench bench-adapt bench-evict bench-trace bench-engine bench-serve bench-tiers bench-tune bench-check

# ci is the gate: static checks (vet + hmlint + staticcheck), build,
# race-enabled tests, and the audit-enabled figure sweep (every
# simulated run carries the invariant auditor; any conservation
# violation fails the target).
ci: lint build race audit

# lint runs the three static layers: the stock vet analyzers, the
# domain-specific hmlint suite (internal/lint), and staticcheck.
lint: vet hmlint staticcheck

vet:
	$(GO) vet ./...

# hmlint enforces the repository's own invariants: staging-protocol
# lock discipline, declared-dependence access modes, determinism of the
# experiment tables, the Options/Retune Validate funnel, audit.Metrics
# attribution, and the interprocedural checks (lock-order cycles,
# condvar wait shape, goroutine lifecycles, tier-chain addressing,
# fast-encoder coverage, snapshot copying). Exits nonzero on any
# finding.
hmlint:
	$(GO) run ./cmd/hmlint ./...

# lint-fix-check guards against drift between generated code and the
# lint gate: re-run go generate (a no-op until the repo grows
# generators, by design), re-run hmlint over the regenerated tree, and
# fail if generation dirtied the checkout.
lint-fix-check:
	$(GO) generate ./...
	$(GO) run ./cmd/hmlint ./...
	git diff --exit-code

# fuzz gives the native trace-codec fuzz targets a short bounded run
# (seeded from the committed X11 capture); CI runs this on every push,
# longer local runs just raise FUZZTIME.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzDecodeEvent -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzEncodeParity -fuzztime $(FUZZTIME)

# staticcheck is optional locally (the build sandbox has no network to
# install it); CI installs the pinned version, so the gate always runs
# it there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped locally (CI pins $(STATICCHECK_VERSION))"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

audit:
	$(GO) run ./cmd/hmrepro -scale small -audit > /dev/null

bench:
	$(GO) test -bench=. -benchmem ./internal/exp/

# bench-adapt regenerates the committed adaptive-controller benchmark
# snapshot from the full-scale X9 sweep (adaptive vs the fixed grid).
bench-adapt:
	$(GO) run ./cmd/hmrepro -adapt -bench-adapt BENCH_adapt.json

# bench-evict regenerates the committed eviction-policy benchmark
# snapshot from the full-scale X10 comparison (DeclOrder vs LRU vs
# Lookahead, plus the adaptive mid-run working-set shift).
bench-evict:
	$(GO) run ./cmd/hmrepro -evict -bench-evict BENCH_evict.json

# bench-trace regenerates the committed trace/replay benchmark snapshot
# from the full-scale X11 validation: replay fidelity on the Fig 8
# overflow capture, capture overhead vs an untraced run, and what-if
# policy deltas vs real runs.
bench-trace:
	$(GO) run ./cmd/hmrepro -replay -bench-trace BENCH_trace.json

# bench-engine regenerates the committed engine hot-path snapshot from
# X12: scheduler throughput at 10k/100k/1M tasks (vs the recorded
# pre-overhaul baseline) and the serial-vs-parallel cluster substrate
# check. Wall-clock numbers — expect host-to-host variance; the
# byte_identical bit and the speedup order of magnitude are the stable
# signals.
bench-engine:
	$(GO) run ./cmd/hmrepro -engine -bench-engine BENCH_engine.json

# bench-serve regenerates the committed multi-tenant service snapshot
# from the full-scale X13 figure: session makespan percentiles + Jain's
# fairness index under three Poisson arrival rates, and the
# budget-isolation run (small tenant vs staging hogs, fair lanes
# on/off). Fully virtual-time: two consecutive runs are byte-identical,
# and a failed isolation gate exits nonzero.
bench-serve:
	$(GO) run ./cmd/hmrepro -serve -bench-serve BENCH_serve.json

# bench-tiers regenerates the committed memory-chain depth snapshot
# from the full-scale X14 sweep: the Fig 8 stencil and Fig 9 matmul
# overflow points on 2-/3-/4-tier chains (+NVM, +remote pool) under
# the DeclOrder and Lookahead victim policies. Fully virtual-time: two
# consecutive runs are byte-identical, and a failed widening-advantage
# gate exits nonzero.
bench-tiers:
	$(GO) run ./cmd/hmrepro -tiers -bench-tiers BENCH_tiers.json

# bench-tune regenerates the committed closed-loop tuning snapshot from
# the full-scale X15 figure: the offline autotuner's verdict over a
# capture of the X10 shift workload, and warm-started vs cold
# time-to-settle on every X9 operating point. Fully virtual-time: two
# consecutive runs are byte-identical, and a failed gate (warm start
# not strictly faster somewhere, or a non-lookahead verdict) exits
# nonzero.
bench-tune:
	$(GO) run ./cmd/hmrepro -tune -bench-tune BENCH_tune.json

# bench-check guards the committed deterministic snapshots against
# drift: regenerate each into a temp file and fail on any byte
# difference from the committed copy. Only the virtual-time snapshots
# are checked — BENCH_engine.json is wall-clock by design. Runs the
# full-scale figures, so it is the slow, thorough gate (CI runs the
# small-scale sweep separately).
bench-check:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/hmrepro -adapt -bench-adapt $$tmp/BENCH_adapt.json >/dev/null; \
	$(GO) run ./cmd/hmrepro -evict -bench-evict $$tmp/BENCH_evict.json >/dev/null; \
	$(GO) run ./cmd/hmrepro -replay -bench-trace $$tmp/BENCH_trace.json >/dev/null; \
	$(GO) run ./cmd/hmrepro -serve -bench-serve $$tmp/BENCH_serve.json >/dev/null; \
	$(GO) run ./cmd/hmrepro -tiers -bench-tiers $$tmp/BENCH_tiers.json >/dev/null; \
	$(GO) run ./cmd/hmrepro -tune -bench-tune $$tmp/BENCH_tune.json >/dev/null; \
	rc=0; \
	for f in BENCH_adapt.json BENCH_evict.json BENCH_trace.json BENCH_serve.json BENCH_tiers.json BENCH_tune.json; do \
		if ! cmp -s "$$f" "$$tmp/$$f"; then echo "bench-check: $$f drifted from a fresh run"; rc=1; fi; \
	done; \
	[ $$rc -eq 0 ] && echo "bench-check: committed snapshots match fresh runs"; \
	exit $$rc
