GO ?= go

.PHONY: ci vet build test race audit bench bench-adapt bench-evict

# ci is the gate: static checks, build, race-enabled tests, and the
# audit-enabled figure sweep (every simulated run carries the invariant
# auditor; any conservation violation fails the target).
ci: vet build race audit

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

audit:
	$(GO) run ./cmd/hmrepro -scale small -audit > /dev/null

bench:
	$(GO) test -bench=. -benchmem ./internal/exp/

# bench-adapt regenerates the committed adaptive-controller benchmark
# snapshot from the full-scale X9 sweep (adaptive vs the fixed grid).
bench-adapt:
	$(GO) run ./cmd/hmrepro -adapt -bench-adapt BENCH_adapt.json

# bench-evict regenerates the committed eviction-policy benchmark
# snapshot from the full-scale X10 comparison (DeclOrder vs LRU vs
# Lookahead, plus the adaptive mid-run working-set shift).
bench-evict:
	$(GO) run ./cmd/hmrepro -evict -bench-evict BENCH_evict.json
