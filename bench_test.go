// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, plus the extension experiments. Each benchmark
// regenerates its figure's data and reports the figure's headline
// quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers.
// Benchmarks run at the Small (1/8) scale per iteration to stay fast;
// run cmd/hmrepro for the full-scale tables.
package hetmem_test

import (
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/kernels"
)

// BenchmarkFig1Stream regenerates Fig. 1 (STREAM bandwidth DDR4 vs
// MCDRAM) and reports the Triad bandwidth ratio.
func BenchmarkFig1Stream(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig1(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Ratio(3)
	}
	b.ReportMetric(ratio, "MCDRAM/DDR4-triad-ratio")
}

// BenchmarkFig2StencilFits regenerates Fig. 2 (Stencil3D on HBM vs
// DDR4, dataset fits) and reports the DDR/HBM kernel-time ratio
// (paper: ~3x).
func BenchmarkFig2StencilFits(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig2(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.KernelRatio()
	}
	b.ReportMetric(ratio, "DDR/HBM-kernel-ratio")
}

// BenchmarkFig5Projections regenerates the Fig. 5 trace comparison and
// reports the Single-IO vs Multi-IO overhead-share gap.
func BenchmarkFig5Projections(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig56(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.Runs[core.SingleIO].OverheadShare - r.Runs[core.MultiIO].OverheadShare
	}
	b.ReportMetric(gap, "singleIO-minus-multiIO-overhead")
}

// BenchmarkFig6SyncFetch regenerates the Fig. 6 comparison and reports
// the synchronous strategy's per-task pre-processing time in ms
// (paper: "of order of 20 ms" at full scale).
func BenchmarkFig6SyncFetch(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig56(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		ms = 1e3 * float64(r.Runs[core.NoIO].WorkerFetchPerTask)
	}
	b.ReportMetric(ms, "sync-fetch-ms/task")
}

// BenchmarkFig7Memcpy regenerates Fig. 7 (migration memcpy cost) and
// reports the HBM->DDR vs DDR->HBM cost ratio at the largest volume.
func BenchmarkFig7Memcpy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig7(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		ratio = float64(last.HBMToDDR) / float64(last.DDRToHBM)
	}
	b.ReportMetric(ratio, "HBMtoDDR/DDRtoHBM")
}

// BenchmarkFig8Stencil regenerates Fig. 8 (Stencil3D strategy
// speedups) and reports the Multiple-IO-threads speedup at the
// smallest reduced working set (paper: ~2x).
func BenchmarkFig8Stencil(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig8(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Rows[0].Speedups[core.MultiIO]
	}
	b.ReportMetric(speedup, "multiIO-speedup")
}

// BenchmarkFig9MatMul regenerates Fig. 9 (MatMul strategy speedups)
// and reports the Multiple-IO-threads speedup at the largest total
// working set.
func BenchmarkFig9MatMul(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig9(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Rows[len(r.Rows)-1].Speedups[core.MultiIO]
	}
	b.ReportMetric(speedup, "multiIO-speedup")
}

// BenchmarkXCacheMode regenerates extension X1 (flat-mode runtime
// prefetch vs hardware cache mode) and reports the flat-mode advantage
// at the largest working set.
func BenchmarkXCacheMode(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunCacheMode(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		adv = float64(last.CacheIterTime) / float64(last.FlatIterTime)
	}
	b.ReportMetric(adv, "cachemode/flat-time-ratio")
}

// BenchmarkXQueueAblation regenerates extension X2 (shared vs per-PE
// wait queues) and reports the shared-queue slowdown factor.
func BenchmarkXQueueAblation(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationQueues(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		factor = float64(r.SharedTime) / float64(r.PerPETime)
	}
	b.ReportMetric(factor, "shared/perPE-time-ratio")
}

// BenchmarkXIOThreads regenerates extension X3 (IO thread count sweep)
// and reports the speedup of the largest pool over one thread.
func BenchmarkXIOThreads(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationIOThreads(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Rows[len(r.Rows)-1].Speedup
	}
	b.ReportMetric(speedup, "maxthreads-speedup")
}

// BenchmarkXEviction regenerates extension X4 (eager vs lazy eviction)
// and reports lazy eviction's fetch reduction on the stencil.
func BenchmarkXEviction(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationEviction(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		row := r.Rows[0]
		reduction = float64(row.EagerFet) / float64(row.LazyFet)
	}
	b.ReportMetric(reduction, "eager/lazy-fetches")
}

// BenchmarkXNVM regenerates extension X5 (NVM far memory) and reports
// how much larger the MultiIO benefit is on the latency+bandwidth
// restricted tier.
func BenchmarkXNVM(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunNVM(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		gain = last.Speedups.NVM / last.Speedups.DDR
	}
	b.ReportMetric(gain, "NVM/DDR-speedup-gain")
}

// BenchmarkXPrefetchDepth regenerates extension X6 and reports the
// unlimited-depth advantage over depth 1.
func BenchmarkXPrefetchDepth(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationPrefetchDepth(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		adv = float64(r.Rows[0].Time) / float64(r.Rows[len(r.Rows)-1].Time)
	}
	b.ReportMetric(adv, "depth1/unlimited-time-ratio")
}

// BenchmarkXLoadBalance regenerates extension X7 and reports the
// rebalancing speedup on the skewed stencil.
func BenchmarkXLoadBalance(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunLoadBalance(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(r.UnbalancedTime) / float64(r.BalancedTime)
	}
	b.ReportMetric(speedup, "LB-speedup")
}

// BenchmarkManagerDispatch drives the Fig 8 overflow stencil through
// the full runtime/manager stack — task dispatch, policy view,
// admission, fetch and eviction — and reports simulated tasks
// dispatched per wall-clock second. This is the end-to-end hot path
// the engine overhaul targets (the sim-only microbenchmarks live in
// internal/sim).
func BenchmarkManagerDispatch(b *testing.B) {
	s := exp.Small
	opts := core.DefaultOptions(core.MultiIO)
	opts.HBMReserve = s.HBMReserve()
	sizes := s.StencilReducedSizes()
	var tasks int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := kernels.NewEnv(kernels.EnvConfig{
			Spec:   s.Machine(),
			NumPEs: s.NumPEs(),
			Opts:   opts,
			Params: charm.DefaultParams(),
		})
		app, err := kernels.NewStencil(env.MG, s.StencilConfig(sizes[len(sizes)-1]))
		if err != nil {
			env.Close()
			b.Fatal(err)
		}
		if _, err := app.Run(); err != nil {
			env.Close()
			b.Fatal(err)
		}
		tasks = env.RT.Stats.TasksExecuted
		env.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(tasks)*float64(b.N)/b.Elapsed().Seconds(), "tasks/sec")
}

// BenchmarkXCluster regenerates extension X8 (multi-node weak scaling)
// and reports the MultiIO-vs-Naive speedup at the largest node count.
func BenchmarkXCluster(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := exp.RunCluster(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Rows[len(r.Rows)-1].Speedup
	}
	b.ReportMetric(speedup, "multiIO-speedup-at-max-nodes")
}
