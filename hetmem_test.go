package hetmem_test

import (
	"testing"

	"github.com/hetmem/hetmem"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: build the machine, declare blocks, run a [prefetch]
// entry under the MultiIO strategy, and check the block actually moved
// through MCDRAM.
func TestFacadeEndToEnd(t *testing.T) {
	eng := hetmem.NewEngine(1)
	mach := hetmem.KNL7250().MustBuild(eng)
	rt := hetmem.NewRuntime(mach, 4, hetmem.DefaultParams(), nil)
	mgr := hetmem.NewManager(rt, hetmem.DefaultOptions(hetmem.MultiIO))
	defer eng.Close()

	blocks := make([]*hetmem.Handle, 8)
	for i := range blocks {
		blocks[i] = mgr.NewHandle("b", 2*hetmem.GB)
	}
	arr := rt.NewArray("w", len(blocks), func(i int) hetmem.Chare { return i }, nil)
	ran := 0
	kern := arr.Register(hetmem.Entry{
		Name:     "k",
		Prefetch: true,
		Deps: func(el *hetmem.Element, m *hetmem.Message) []hetmem.DataDep {
			return []hetmem.DataDep{{Handle: blocks[el.Index], Mode: hetmem.ReadWrite}}
		},
		Fn: func(p *hetmem.Proc, pe *hetmem.PE, el *hetmem.Element, m *hetmem.Message) {
			if blocks[el.Index].State() != hetmem.InHBM {
				t.Errorf("chare %d ran with block in %v", el.Index, blocks[el.Index].State())
			}
			mgr.RunKernel(p, []hetmem.DataDep{{Handle: blocks[el.Index], Mode: hetmem.ReadWrite}},
				hetmem.KernelSpec{TrafficScale: 1})
			ran++
		},
	})
	rt.Main(func(p *hetmem.Proc) { arr.Broadcast(-1, kern, nil) })
	eng.RunAll()

	if ran != len(blocks) {
		t.Fatalf("ran %d kernels, want %d", ran, len(blocks))
	}
	if mgr.Stats.Fetches == 0 {
		t.Fatal("no prefetches through the facade")
	}
	if mach.HBM().PeakUsed == 0 {
		t.Fatal("HBM never used")
	}
	if eng.Now() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

// TestFacadeMachinePresets checks the re-exported presets and modes.
func TestFacadeMachinePresets(t *testing.T) {
	spec := hetmem.KNL7250()
	if spec.HBMCap != 16*hetmem.GB {
		t.Fatal("KNL preset HBM capacity")
	}
	if spec.MemoryMode != hetmem.Flat || spec.ClusterMode != hetmem.AllToAll {
		t.Fatal("KNL preset modes")
	}
	for _, m := range []hetmem.Mode{hetmem.DDROnly, hetmem.Baseline, hetmem.SingleIO, hetmem.NoIO, hetmem.MultiIO} {
		if m.String() == "" {
			t.Fatal("mode name empty")
		}
	}
	if hetmem.DefaultStencilConfig().Validate() != nil {
		t.Fatal("stencil default invalid")
	}
	if hetmem.DefaultMatMulConfig().Validate() != nil {
		t.Fatal("matmul default invalid")
	}
}

// TestFacadeApps runs both paper applications through the facade at a
// tiny scale.
func TestFacadeApps(t *testing.T) {
	spec := hetmem.KNL7250()
	spec.Cores = 8
	spec.HBMCap = 2 * hetmem.GB
	spec.DDRCap = 12 * hetmem.GB

	scfg := hetmem.DefaultStencilConfig()
	scfg.NumPEs = 8
	scfg.TotalBytes = 4 * hetmem.GB
	scfg.ReducedBytes = hetmem.GB
	scfg.Iterations = 2
	env := hetmem.NewEnv(hetmem.EnvConfig{Spec: spec, NumPEs: 8, Opts: hetmem.DefaultOptions(hetmem.MultiIO)})
	app, err := hetmem.NewStencil(env.MG, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	env.Close()

	mcfg := hetmem.DefaultMatMulConfig()
	mcfg.NumPEs = 8
	mcfg.Grid = 8
	mcfg.TotalBytes = 3 * hetmem.GB
	env2 := hetmem.NewEnv(hetmem.EnvConfig{Spec: spec, NumPEs: 8, Opts: hetmem.DefaultOptions(hetmem.SingleIO)})
	mapp, err := hetmem.NewMatMul(env2.MG, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mapp.Run(); err != nil {
		t.Fatal(err)
	}
	env2.Close()
}
