// Out-of-core analytics example: a custom application (not from the
// paper) built on the public API, showing how the data-dependence
// annotations generalise beyond stencils and dgemm.
//
// A 40 GB dataset of partition blocks lives on DDR4. A wave of scan
// queries runs over every partition; each query task declares three
// dependences:
//
//   - its partition block        (readonly — shared with other queries)
//   - a dictionary block         (readonly — shared by every task)
//   - its private result block   (writeonly)
//
// The runtime stages partitions through MCDRAM ahead of the scans and
// evicts them behind, with the dictionary pinned hot by its constant
// reuse. The example prints a Projections-style activity timeline.
//
//	go run ./examples/oocanalytics
package main

import (
	"fmt"
	"log"

	"github.com/hetmem/hetmem"
)

const (
	numPartitions = 40
	partitionSize = hetmem.GB
	numQueries    = 2 // scan waves over the whole dataset
	numPEs        = 16
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oocanalytics: ")

	eng := hetmem.NewEngine(7)
	mach := hetmem.KNL7250().MustBuild(eng)
	tracer := hetmem.NewTracer(eng, numPEs)
	rt := hetmem.NewRuntime(mach, numPEs, hetmem.DefaultParams(), tracer)
	mgr := hetmem.NewManager(rt, hetmem.DefaultOptions(hetmem.MultiIO))

	dict := mgr.NewHandle("dictionary", 512<<20)
	partitions := make([]*hetmem.Handle, numPartitions)
	results := make([]*hetmem.Handle, numPartitions)
	for i := range partitions {
		partitions[i] = mgr.NewHandle(fmt.Sprintf("part[%d]", i), partitionSize)
		results[i] = mgr.NewHandle(fmt.Sprintf("res[%d]", i), 64<<20)
	}

	arr := rt.NewArray("scanners", numPartitions, func(i int) hetmem.Chare { return i }, nil)

	deps := func(el *hetmem.Element, msg *hetmem.Message) []hetmem.DataDep {
		return []hetmem.DataDep{
			{Handle: partitions[el.Index], Mode: hetmem.ReadOnly},
			{Handle: dict, Mode: hetmem.ReadOnly},
			{Handle: results[el.Index], Mode: hetmem.WriteOnly},
		}
	}

	wave := 0
	done := false
	var scan *hetmem.Entry
	barrier := rt.NewReduction(numPartitions, func() {
		wave++
		if wave < numQueries {
			arr.Broadcast(-1, scan, wave)
		} else {
			done = true
		}
	})
	scan = arr.Register(hetmem.Entry{
		Name:     "scan_partition",
		Prefetch: true,
		Deps:     deps,
		Fn: func(p *hetmem.Proc, pe *hetmem.PE, el *hetmem.Element, msg *hetmem.Message) {
			// A predicate scan: ~1 flop per byte over the partition
			// plus dictionary lookups.
			mgr.RunKernel(p, deps(el, msg), hetmem.KernelSpec{
				Flops:        float64(partitionSize),
				TrafficScale: 1,
			})
			barrier.Contribute()
		},
	})

	rt.Main(func(p *hetmem.Proc) { arr.Broadcast(-1, scan, 0) })
	eng.RunAll()
	defer eng.Close()
	if !done {
		log.Fatal("analytics run did not complete")
	}

	st := mgr.Stats
	fmt.Printf("scanned %d GB x %d waves in %.2f simulated seconds\n",
		numPartitions*int(partitionSize>>30), numQueries, eng.Now())
	fmt.Printf("prefetches: %d (%.1f GB), dictionary fetched %d time(s)\n",
		st.Fetches, float64(st.BytesFetched)/float64(hetmem.GB), dict.Fetches)
	fmt.Println()
	fmt.Println(tracer.Timeline(100))
}
