// MatMul example: the paper's second evaluation application — blocked
// dense matrix multiplication with read-only A and B blocks shared
// across chares through a node-level block cache (the Charm++
// nodegroup pattern).
//
// Because shared read-only blocks are reused before eviction, even the
// single-IO-thread strategy keeps up here (contrast with Stencil3D,
// where it is a slowdown) — the paper's Fig. 9 vs Fig. 8 story.
//
//	go run ./examples/matmul [-total 24]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/hetmem/hetmem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matmul: ")
	totalGB := flag.Int64("total", 24, "combined A+B+C working set in GB")
	flag.Parse()

	cfg := hetmem.DefaultMatMulConfig()
	cfg.TotalBytes = *totalGB << 30

	fmt.Printf("MatMul: %d GB total (N=%.0f, %dx%d blocks of %d MB), %d PEs\n",
		*totalGB, cfg.N(), cfg.Grid, cfg.Grid, cfg.BlockBytes()>>20, cfg.NumPEs)

	var naive hetmem.Time
	for _, mode := range []hetmem.Mode{
		hetmem.DDROnly, hetmem.Baseline,
		hetmem.SingleIO, hetmem.NoIO, hetmem.MultiIO,
	} {
		env := hetmem.NewEnv(hetmem.EnvConfig{
			Spec:   hetmem.KNL7250(),
			NumPEs: cfg.NumPEs,
			Opts:   hetmem.DefaultOptions(mode),
		})
		app, err := hetmem.NewMatMul(env.MG, cfg)
		if err != nil {
			log.Fatal(err)
		}
		t, err := app.Run()
		if err != nil {
			log.Fatal(err)
		}
		if mode == hetmem.Baseline {
			naive = t
		}
		line := fmt.Sprintf("%-22s %8.3f s", mode, t)
		if naive > 0 {
			line += fmt.Sprintf("  (speedup vs naive %.2fx)", float64(naive)/float64(t))
		}
		if mode.Moves() {
			line += fmt.Sprintf("  [%d prefetches]", env.MG.Stats.Fetches)
		}
		fmt.Println(line)
		env.Close()
	}
}
