// Stencil3D example: the paper's first evaluation application on the
// public API, comparing the Naive baseline against a chosen strategy.
//
// The 32 GB grid does not fit the 16 GB MCDRAM; over-decomposition
// into chares plus runtime-managed prefetch/eviction keeps the compute
// kernels fed from high-bandwidth memory.
//
//	go run ./examples/stencil3d [-mode multi] [-reduced 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/hetmem/hetmem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil3d: ")
	modeName := flag.String("mode", "multi", "strategy: single, no, or multi")
	reducedGB := flag.Int64("reduced", 4, "reduced working set in GB")
	flag.Parse()

	var mode hetmem.Mode
	switch *modeName {
	case "single":
		mode = hetmem.SingleIO
	case "no":
		mode = hetmem.NoIO
	case "multi":
		mode = hetmem.MultiIO
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}

	cfg := hetmem.DefaultStencilConfig()
	cfg.ReducedBytes = *reducedGB << 30

	run := func(m hetmem.Mode) (hetmem.Time, *hetmem.Manager) {
		env := hetmem.NewEnv(hetmem.EnvConfig{
			Spec:   hetmem.KNL7250(),
			NumPEs: cfg.NumPEs,
			Opts:   hetmem.DefaultOptions(m),
		})
		defer env.Close()
		app, err := hetmem.NewStencil(env.MG, cfg)
		if err != nil {
			log.Fatal(err)
		}
		total, err := app.Run()
		if err != nil {
			log.Fatal(err)
		}
		return total, env.MG
	}

	fmt.Printf("Stencil3D: %d GB grid, %d GB reduced working set, %d chares on %d PEs, %d iterations\n",
		cfg.TotalBytes>>30, cfg.ReducedBytes>>30, cfg.NumChares(), cfg.NumPEs, cfg.Iterations)

	naive, _ := run(hetmem.Baseline)
	fmt.Printf("%-22s %8.3f s\n", hetmem.Baseline, naive)

	t, mgr := run(mode)
	fmt.Printf("%-22s %8.3f s  (speedup %.2fx)\n", mode, t, float64(naive)/float64(t))
	fmt.Printf("  moved %.1f GB into HBM across %d prefetches\n",
		float64(mgr.Stats.BytesFetched)/float64(hetmem.GB), mgr.Stats.Fetches)
}
