// Quickstart: the smallest complete hetmem program.
//
// It builds a simulated KNL node, starts the Charm-like runtime with
// the asynchronous per-PE IO-thread strategy (the paper's best), and
// runs a toy out-of-core application: 16 chares, each owning a 1 GB
// data block — a 16 GB working set against the ~15 GB HBM budget — so
// blocks must be staged in and out of MCDRAM as tasks execute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/hetmem/hetmem"
)

func main() {
	log.SetFlags(0)

	// A deterministic simulation of the paper's machine: Intel Xeon
	// Phi KNL 7250 in Flat/All-to-All mode (16 GB MCDRAM node 1,
	// 96 GB DDR4 node 0).
	eng := hetmem.NewEngine(1)
	mach := hetmem.KNL7250().MustBuild(eng)

	// 16 worker PEs, each with an asynchronous IO thread on its
	// hyperthread sibling (the "Multiple queues, Multiple IO threads"
	// strategy).
	rt := hetmem.NewRuntime(mach, 16, hetmem.DefaultParams(), nil)
	mgr := hetmem.NewManager(rt, hetmem.DefaultOptions(hetmem.MultiIO))

	// Declare 16 managed data blocks (the paper's CkIOHandle): 1 GB
	// each, allocated on DDR4 and moved by the runtime.
	const nChares = 16
	blocks := make([]*hetmem.Handle, nChares)
	for i := range blocks {
		blocks[i] = mgr.NewHandle(fmt.Sprintf("block[%d]", i), hetmem.GB)
	}

	// An over-decomposed chare array; each chare works on its block.
	arr := rt.NewArray("workers", nChares, func(i int) hetmem.Chare { return i }, nil)

	// The bandwidth-sensitive entry method, marked [prefetch] with a
	// declared readwrite dependence — the analogue of
	//
	//	entry [prefetch] void compute_kernel() [readwrite:A]
	done := 0
	kernel := arr.Register(hetmem.Entry{
		Name:     "compute_kernel",
		Prefetch: true,
		Deps: func(el *hetmem.Element, msg *hetmem.Message) []hetmem.DataDep {
			return []hetmem.DataDep{{Handle: blocks[el.Index], Mode: hetmem.ReadWrite}}
		},
		Fn: func(p *hetmem.Proc, pe *hetmem.PE, el *hetmem.Element, msg *hetmem.Message) {
			// Stream the block (reads+writes) with a 2 flop/byte
			// kernel; the block is guaranteed to be in HBM here.
			if blocks[el.Index].State() != hetmem.InHBM {
				log.Fatalf("chare %d ran with its block in %v", el.Index, blocks[el.Index].State())
			}
			mgr.RunKernel(p, []hetmem.DataDep{
				{Handle: blocks[el.Index], Mode: hetmem.ReadWrite},
			}, hetmem.KernelSpec{Flops: 2 * float64(hetmem.GB), TrafficScale: 1})
			done++
		},
	})

	// Kick everything off and run the virtual clock to quiescence.
	rt.Main(func(p *hetmem.Proc) { arr.Broadcast(-1, kernel, nil) })
	eng.RunAll()
	defer eng.Close()

	st := mgr.Stats
	fmt.Printf("ran %d/%d kernels in %.3f simulated seconds\n", done, nChares, eng.Now())
	fmt.Printf("prefetches: %d (%.1f GB), evictions: %d (%.1f GB)\n",
		st.Fetches, float64(st.BytesFetched)/float64(hetmem.GB),
		st.Evictions, float64(st.BytesEvicted)/float64(hetmem.GB))
	fmt.Printf("HBM peak use: %.1f GB of %.1f GB\n",
		float64(mach.HBM().PeakUsed)/float64(hetmem.GB),
		float64(mach.HBM().Cap)/float64(hetmem.GB))
}
