// Package hetmem is a memory-heterogeneity-aware runtime system for
// bandwidth-sensitive HPC applications, reproducing Chandrasekar, Ni
// and Kale, "A Memory Heterogeneity-Aware Runtime System for
// Bandwidth-Sensitive HPC Applications" (IPDPSW 2017).
//
// The library bundles:
//
//   - a deterministic discrete-event simulation of a many-core node
//     with heterogeneous memory (MCDRAM/HBM + DDR4, the KNL the paper
//     evaluates on), including max-min fair bandwidth sharing, a
//     libnuma-like allocation API and machine presets;
//   - a Charm++-like over-decomposed task runtime (chare arrays,
//     [prefetch] entry methods with declared data dependences, per-PE
//     converse schedulers, reductions, nodegroups);
//   - the paper's contribution: an out-of-core data-block manager with
//     INHBM/INDDR block states, reference counts, per-PE wait/run
//     queues, and three prefetch/eviction strategies (single IO
//     thread, synchronous worker-driven, one async IO thread per PE);
//   - the paper's two evaluation applications (Stencil3D and blocked
//     matrix multiplication) and drivers that regenerate every figure
//     of the evaluation (Figs. 1, 2, 5, 6, 7, 8, 9) plus extensions.
//
// # Quick start
//
//	eng := hetmem.NewEngine(1)
//	mach := hetmem.KNL7250().MustBuild(eng)
//	rt := hetmem.NewRuntime(mach, 64, hetmem.DefaultParams(), nil)
//	mgr := hetmem.NewManager(rt, hetmem.DefaultOptions(hetmem.MultiIO))
//	// declare blocks with mgr.NewHandle, register [prefetch] entries
//	// with Deps, send messages, then eng.RunAll().
//
// See examples/ for complete programs and internal/exp for the
// experiment harness.
package hetmem

import (
	"io"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/numa"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/serve"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
	"github.com/hetmem/hetmem/internal/trace"
	"github.com/hetmem/hetmem/internal/tune"
)

// --- simulation engine ---

type (
	// Engine is the deterministic discrete-event simulation engine.
	Engine = sim.Engine
	// Proc is a simulation process (virtual-time coroutine).
	Proc = sim.Proc
	// Time is virtual time in seconds.
	Time = sim.Time
)

// NewEngine returns an engine with the given deterministic seed.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// --- machine model ---

type (
	// MachineSpec describes a many-core node with heterogeneous
	// memory.
	MachineSpec = topology.MachineSpec
	// Machine is an instantiated MachineSpec.
	Machine = topology.Machine
	// MemoryMode is the KNL MCDRAM configuration (flat/cache/hybrid).
	MemoryMode = topology.MemoryMode
	// ClusterMode is the KNL mesh affinity mode.
	ClusterMode = topology.ClusterMode
	// MemNode is one memory node (capacity + bandwidth).
	MemNode = memsim.Node
	// NodeKind classifies a memory node (HBM, DDR, NVM, Remote).
	NodeKind = memsim.NodeKind
	// TierSpec describes one extra memory tier appended below DDR in a
	// MachineSpec's chain.
	TierSpec = topology.TierSpec
	// Allocator is the libnuma-like allocation API.
	Allocator = numa.Allocator
	// Buffer is an allocated region.
	Buffer = numa.Buffer
)

// Memory and cluster modes.
const (
	Flat     = topology.Flat
	CacheMod = topology.Cache
	Hybrid   = topology.Hybrid

	AllToAll = topology.AllToAll
	Quadrant = topology.Quadrant
	SNC4     = topology.SNC4
)

// Node ids in the paper's flat-mode convention.
const (
	DDRNodeID = topology.DDRNodeID
	HBMNodeID = topology.HBMNodeID
)

// Memory node kinds, ordered near to far along the tier chain.
const (
	KindHBM    = memsim.HBM
	KindDDR    = memsim.DDR
	KindNVM    = memsim.NVM
	KindRemote = memsim.Remote
)

// GB is one gibibyte in bytes.
const GB = topology.GB

// KNL7250 returns the machine used in the paper's evaluation: an Intel
// Xeon Phi Knights Landing node in Flat / All-to-All mode.
func KNL7250() MachineSpec { return topology.KNL7250() }

// TieredKNL returns the KNL preset extended to an n-tier memory chain
// (2 = the paper's machine, 3 adds NVM, 4 adds a remote/CXL pool).
func TieredKNL(depth int) (MachineSpec, error) { return topology.TieredKNL(depth) }

// --- Charm-like runtime ---

type (
	// Chare is an application object; any type can be a chare.
	Chare = charm.Chare
	// Runtime is the node-level task runtime.
	Runtime = charm.Runtime
	// Params are runtime cost knobs.
	Params = charm.Params
	// ChareArray is an over-decomposed chare array.
	ChareArray = charm.Array
	// Element is one chare of an array.
	Element = charm.Element
	// Entry describes an entry method ([prefetch] attribute, declared
	// dependences).
	Entry = charm.Entry
	// Message is an entry-method payload.
	Message = charm.Message
	// PE is a processing element.
	PE = charm.PE
	// Reduction is a counting barrier with a completion callback.
	Reduction = charm.Reduction
	// DataDep pairs a data handle with its declared access mode.
	DataDep = charm.DataDep
	// AccessMode is readonly / readwrite / writeonly.
	AccessMode = charm.AccessMode
	// Tracer records per-PE activity (the Projections analogue).
	Tracer = projections.Tracer
)

// Access modes, as in the .ci dependence annotations.
const (
	ReadOnly  = charm.ReadOnly
	ReadWrite = charm.ReadWrite
	WriteOnly = charm.WriteOnly
)

// NewRuntime builds a runtime with numPEs workers on machine m.
func NewRuntime(m *Machine, numPEs int, params Params, tracer *Tracer) *Runtime {
	return charm.NewRuntime(m, numPEs, params, tracer)
}

// DefaultParams returns representative scheduler cost knobs.
func DefaultParams() Params { return charm.DefaultParams() }

// NewTracer returns a Projections-style activity tracer.
func NewTracer(e *Engine, lanes int) *Tracer { return projections.NewTracer(e, lanes) }

// --- OOC manager (the paper's contribution) ---

type (
	// Manager is the memory-heterogeneity-aware prefetch/evict layer.
	Manager = core.Manager
	// Options configure a Manager.
	Options = core.Options
	// Mode selects the placement/movement configuration.
	Mode = core.Mode
	// Handle is a managed data block (the paper's CkIOHandle).
	Handle = core.Handle
	// BlockState is INDDR/INHBM plus the transitional states.
	BlockState = core.BlockState
	// KernelSpec describes a bandwidth-sensitive kernel's demand.
	KernelSpec = core.KernelSpec
	// EvictPolicy orders eviction victims under capacity pressure.
	EvictPolicy = core.EvictPolicy
)

// Eviction victim-selection policies for Options.EvictPolicy.
var (
	// EvictDeclOrder evicts dead blocks in declaration order (default).
	EvictDeclOrder = core.DeclOrder
	// EvictLRU evicts the block with the oldest completed use.
	EvictLRU = core.LRU
	// EvictLookahead evicts the block whose next declared use is
	// farthest away, consulting the wait queues.
	EvictLookahead = core.Lookahead
)

// ParseEvictPolicy resolves a policy name ("decl", "lru", "lookahead").
func ParseEvictPolicy(name string) (EvictPolicy, error) { return core.ParseEvictPolicy(name) }

// EvictPolicies lists the built-in victim policies.
func EvictPolicies() []EvictPolicy { return core.EvictPolicies() }

// Placement/movement modes, matching the evaluation's bars.
const (
	DDROnly  = core.DDROnly
	Baseline = core.Baseline
	SingleIO = core.SingleIO
	NoIO     = core.NoIO
	MultiIO  = core.MultiIO
)

// Block states.
const (
	InDDR = core.InDDR
	InHBM = core.InHBM
)

// NewManager builds the OOC manager and installs it as the runtime's
// interceptor when the mode moves data.
func NewManager(rt *Runtime, opts Options) *Manager { return core.NewManager(rt, opts) }

// DefaultOptions returns the paper-faithful configuration for a mode.
func DefaultOptions(mode Mode) Options { return core.DefaultOptions(mode) }

// --- online adaptive controller ---

type (
	// Observer receives task-completion callbacks from a Manager.
	Observer = core.Observer
	// AdaptController tunes a Manager's strategy knobs online from
	// runtime feedback (wait shares, HBM pressure, retry counters).
	AdaptController = adapt.Controller
	// AdaptConfig parameterises the controller's policies.
	AdaptConfig = adapt.Config
	// AdaptFeedback is one sampled feedback window.
	AdaptFeedback = adapt.Feedback
	// AdaptDecision records one controller action for tracing.
	AdaptDecision = adapt.Decision
)

// NewAdaptController builds a controller for mg; call Attach to start
// observing and wire Barrier into the app's iteration hook. The
// manager must run a movement mode with Options.Metrics and a Tracer.
func NewAdaptController(mg *Manager, cfg AdaptConfig) (*AdaptController, error) {
	return adapt.New(mg, cfg)
}

// DefaultAdaptConfig returns the controller defaults (also used for
// any zero fields in a custom AdaptConfig).
func DefaultAdaptConfig() AdaptConfig { return adapt.DefaultConfig() }

// --- task-level tracing, capture and replay ---

type (
	// TraceRecorder captures the runtime's event stream at zero virtual
	// cost; attach one before the run starts.
	TraceRecorder = trace.Recorder
	// TraceCapture is a recorded (or decoded) event stream with a
	// versioned deterministic JSONL encoding.
	TraceCapture = trace.Capture
	// TraceEvent is one captured runtime event.
	TraceEvent = trace.Event
	// TraceKnobs is the replayable image of a Manager's option set.
	TraceKnobs = trace.Knobs
	// TraceSummary is the terminal digest of a capture (occupancy,
	// overlap, exposed staging).
	TraceSummary = trace.Summary
	// TraceWorkload is a capture reconstructed for replay.
	TraceWorkload = trace.Workload
	// TraceReplayConfig parameterises a replay (nil Knobs = faithful).
	TraceReplayConfig = trace.ReplayConfig
	// TraceReplayResult is a finished replay with its own capture.
	TraceReplayResult = trace.ReplayResult
	// TraceOutcome condenses a capture for what-if comparison.
	TraceOutcome = trace.Outcome
)

// NewTraceRecorder builds a recorder for mg; call Attach before the
// run, Capture after it.
func NewTraceRecorder(mg *Manager) *TraceRecorder { return trace.NewRecorder(mg) }

// DecodeTrace parses a JSONL capture, recovering the readable prefix
// of damaged files alongside the error.
func DecodeTrace(r io.Reader) (*TraceCapture, error) { return trace.Decode(r) }

// DecodeTraceFile parses the capture at path.
func DecodeTraceFile(path string) (*TraceCapture, error) { return trace.DecodeFile(path) }

// SummarizeTrace digests a capture for the terminal.
func SummarizeTrace(c *TraceCapture) *TraceSummary { return trace.Summarize(c) }

// ExportChromeTrace converts a capture to Chrome trace_event JSON.
func ExportChromeTrace(c *TraceCapture, w io.Writer) error { return trace.ExportChrome(c, w) }

// ReconstructTrace extracts the replayable workload from a capture.
func ReconstructTrace(c *TraceCapture) (*TraceWorkload, error) { return trace.Reconstruct(c) }

// --- offline autotuner ---

type (
	// TuneConfig parameterises an offline tune run (search space,
	// early-abandon toggle).
	TuneConfig = tune.Config
	// TuneSpace is the searched knob space.
	TuneSpace = tune.Space
	// TuneEvaluator is the memoizing replay-driven makespan oracle a
	// search (or a what-if loop) judges knob sets with.
	TuneEvaluator = tune.Evaluator
	// RecommendedConfig is the versioned tune verdict artifact.
	RecommendedConfig = tune.RecommendedConfig
)

// Tune searches the knob space over a capture by replaying it through
// the real scheduler and returns the recommended configuration. Feed
// the verdict's Options() to AdaptConfig.Warm for a warm start.
func Tune(c *TraceCapture, cfg TuneConfig) (*RecommendedConfig, error) { return tune.Tune(c, cfg) }

// NewTuneEvaluator reconstructs a capture into a reusable evaluator.
func NewTuneEvaluator(c *TraceCapture) (*TuneEvaluator, error) { return tune.NewEvaluator(c) }

// LoadRecommendedConfig reads and version-checks a tune artifact.
func LoadRecommendedConfig(path string) (*RecommendedConfig, error) { return tune.Load(path) }

// --- evaluation applications ---

type (
	// StencilConfig sizes a Stencil3D benchmark run.
	StencilConfig = kernels.StencilConfig
	// StencilApp is an instantiated Stencil3D benchmark.
	StencilApp = kernels.StencilApp
	// MatMulConfig sizes a blocked matrix multiplication.
	MatMulConfig = kernels.MatMulConfig
	// MatMulApp is an instantiated MatMul benchmark.
	MatMulApp = kernels.MatMulApp
	// Env bundles engine + machine + runtime + manager for one run.
	Env = kernels.Env
	// EnvConfig parameterises NewEnv.
	EnvConfig = kernels.EnvConfig
)

// NewEnv builds a ready simulation environment.
func NewEnv(cfg EnvConfig) *Env { return kernels.NewEnv(cfg) }

// DefaultStencilConfig returns the paper's Stencil3D setup.
func DefaultStencilConfig() StencilConfig { return kernels.DefaultStencilConfig() }

// NewStencil builds the Stencil3D application on a manager.
func NewStencil(mg *Manager, cfg StencilConfig) (*StencilApp, error) {
	return kernels.NewStencil(mg, cfg)
}

// DefaultMatMulConfig returns the paper's MatMul setup.
func DefaultMatMulConfig() MatMulConfig { return kernels.DefaultMatMulConfig() }

// NewMatMul builds the MatMul application on a manager.
func NewMatMul(mg *Manager, cfg MatMulConfig) (*MatMulApp, error) {
	return kernels.NewMatMul(mg, cfg)
}

// --- multi-tenant service (hetmemd) ---

type (
	// ServeConfig parameterises the multi-tenant session scheduler: the
	// shared machine, per-tenant HBM budgets and the IO lane policy.
	ServeConfig = serve.Config
	// ServeTenantConfig pre-registers a tenant with its HBM budget and
	// fair-share weight.
	ServeTenantConfig = serve.TenantConfig
	// ServeWorkloadSpec is one submitted workload: kernel, sizes and
	// per-session runtime knobs.
	ServeWorkloadSpec = serve.WorkloadSpec
	// ServeScheduler is the deterministic multi-session core: admission
	// control, budget enforcement and weighted-fair lane sharing.
	ServeScheduler = serve.Scheduler
	// ServeServer wraps a Scheduler with the HTTP/JSON API and a
	// virtual-time drive loop.
	ServeServer = serve.Server
	// ServeSession is one workload's lifecycle record.
	ServeSession = serve.Session
	// ServeStats is the aggregate + per-tenant service snapshot.
	ServeStats = serve.Stats
)

// NewServeScheduler builds the multi-session scheduler.
func NewServeScheduler(cfg ServeConfig) (*ServeScheduler, error) { return serve.NewScheduler(cfg) }

// NewServeServer builds the HTTP service over a fresh scheduler; serve
// its Handler() and run Loop() in a goroutine.
func NewServeServer(cfg ServeConfig) (*ServeServer, error) { return serve.NewServer(cfg) }
